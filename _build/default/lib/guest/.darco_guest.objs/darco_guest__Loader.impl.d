lib/guest/loader.ml: Cpu Isa List Memory Program
