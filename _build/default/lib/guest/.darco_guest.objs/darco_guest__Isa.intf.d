lib/guest/isa.mli: Format
