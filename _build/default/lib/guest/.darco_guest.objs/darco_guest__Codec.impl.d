lib/guest/codec.ml: Array Buffer Bytes Char Int64 Isa Semantics
