lib/guest/flags.ml: Isa List String
