type item =
  | Insn of ((string -> int) -> Isa.insn) * int  (* generator, encoded length *)
  | Data of Bytes.t
  | Data_label of string                          (* 4-byte address of label *)

type t = {
  base : int;
  mutable rev_items : (int * item) list;  (* (address, item), newest first *)
  mutable pos : int;
  labels : (string, int) Hashtbl.t;
}

let create ?(base = 0x1000) () =
  { base; rev_items = []; pos = base; labels = Hashtbl.create 64 }

let here t = t.pos

let push t item len =
  t.rev_items <- (t.pos, item) :: t.rev_items;
  t.pos <- t.pos + len

let label t name =
  if Hashtbl.mem t.labels name then failwith ("Asm: duplicate label " ^ name);
  Hashtbl.replace t.labels name t.pos

let emit t gen =
  (* Size with a worst-case dummy resolution: label addresses are always
     above the 8-bit displacement range, so sizing with a large value keeps
     the two passes consistent. *)
  let len = Codec.length (gen (fun _ -> 0x0FFF_FFF0)) in
  push t (Insn (gen, len)) len

let insn t i = emit t (fun _ -> i)
let insn_with = emit
let jmp t name = emit t (fun resolve -> Isa.Jmp (resolve name))
let jcc t c name = emit t (fun resolve -> Isa.Jcc (c, resolve name))
let call t name = emit t (fun resolve -> Isa.Call (resolve name))

let jmp_table t table idx =
  emit t (fun resolve ->
      Isa.JmpInd (Mem { base = None; index = Some (idx, S4); disp = resolve table }))

let mov_label t r name =
  emit t (fun resolve -> Isa.Mov (Isa.Reg r, Isa.Imm (resolve name)))

let bytes t b = push t (Data b) (Bytes.length b)

let dword t v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  bytes t b

let dword_label t name = push t (Data_label name) 4

let f64 t v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.bits_of_float v);
  bytes t b

let zeros t n = bytes t (Bytes.make n '\000')

let align t n =
  let rem = t.pos mod n in
  if rem <> 0 then zeros t (n - rem)

let assemble ?entry t =
  let resolve name =
    match Hashtbl.find_opt t.labels name with
    | Some a -> a
    | None -> failwith ("Asm: undefined label " ^ name)
  in
  let items = List.rev t.rev_items in
  let size = t.pos - t.base in
  let image = Bytes.make size '\000' in
  List.iter
    (fun (addr, item) ->
      let off = addr - t.base in
      match item with
      | Insn (gen, len) ->
        let encoded = Codec.encode ~pc:addr (gen resolve) in
        assert (Bytes.length encoded = len);
        Bytes.blit encoded 0 image off len
      | Data b -> Bytes.blit b 0 image off (Bytes.length b)
      | Data_label name ->
        Bytes.set_int32_le image off (Int32.of_int (resolve name)))
    items;
  let entry = match entry with None -> t.base | Some name -> resolve name in
  let symbols = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.labels [] in
  { Program.entry; chunks = [ (t.base, image) ]; symbols }
