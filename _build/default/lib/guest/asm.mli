(** A two-pass assembler for Gx86 with symbolic labels.

    Usage: create a unit, emit instructions/data (control transfers may name
    labels), then {!assemble} into a {!Program.t}.  Instruction lengths do
    not depend on label values, so layout is resolved in a single sizing
    pass followed by an encoding pass. *)

type t

val create : ?base:int -> unit -> t
(** [base] is the load address of the first byte (default 0x1000). *)

val here : t -> int
(** Address of the next byte to be emitted. *)

val label : t -> string -> unit
(** Define a label at the current address.  Label names must be unique. *)

val insn : t -> Isa.insn -> unit
(** Emit a fully resolved instruction. *)

val insn_with : t -> ((string -> int) -> Isa.insn) -> unit
(** Emit an instruction whose operands reference label addresses (resolved
    at assembly). *)

val jmp : t -> string -> unit
val jcc : t -> Isa.cond -> string -> unit
val call : t -> string -> unit
(** Label-targeted control transfers. *)

val mov_label : t -> Isa.reg -> string -> unit
(** Load a label's address into a register (for indirect jumps / tables). *)

val dword_label : t -> string -> unit
(** Emit the 4-byte address of a label (jump tables). *)

val jmp_table : t -> string -> Isa.reg -> unit
(** [jmp_table t table idx] emits an indirect jump through
    [\[table + idx*4\]]. *)

val bytes : t -> Bytes.t -> unit
val dword : t -> int -> unit
val f64 : t -> float -> unit
val zeros : t -> int -> unit
val align : t -> int -> unit

val assemble : ?entry:string -> t -> Program.t
(** Resolve labels and produce the image.  [entry] defaults to the base
    address.  Raises [Failure] on undefined or duplicate labels. *)
