type t = {
  entry : int;
  chunks : (int * Bytes.t) list;
  symbols : (string * int) list;
}

let image_end t =
  List.fold_left (fun acc (addr, b) -> max acc (addr + Bytes.length b)) 0 t.chunks

let symbol t name = List.assoc name t.symbols
let code_bytes t = List.fold_left (fun acc (_, b) -> acc + Bytes.length b) 0 t.chunks
