open Isa

exception Bad_encoding of int

(* Opcode space.  One byte per instruction form; sub-operation selectors and
   operand shape descriptors follow as additional bytes. *)
let op_nop = 0x00
and op_mov = 0x01
and op_movx = 0x02
and op_movw = 0x03
and op_lea = 0x04
and op_alu = 0x05
and op_cmp = 0x06
and op_test = 0x07
and op_inc = 0x08
and op_dec = 0x09
and op_neg = 0x0A
and op_not = 0x0B
and op_shift = 0x0C
and op_mul = 0x0D
and op_imul = 0x0E
and op_imul2 = 0x0F
and op_div = 0x10
and op_idiv = 0x11
and op_push = 0x12
and op_pop = 0x13
and op_jmp = 0x14
and op_jmpind = 0x15
and op_jcc = 0x16
and op_call = 0x17
and op_callind = 0x18
and op_ret = 0x19
and op_cmov = 0x1A
and op_setcc = 0x1B
and op_str = 0x1C
and op_fld = 0x1D
and op_fst = 0x1E
and op_fmov = 0x1F
and op_fldi = 0x20
and op_fbin = 0x21
and op_fun = 0x22
and op_fcmp = 0x23
and op_fild = 0x24
and op_fist = 0x25
and op_syscall = 0x26
and op_halt = 0x27

let alu_code = function
  | Add -> 0 | Sub -> 1 | Adc -> 2 | Sbb -> 3 | And -> 4 | Or -> 5 | Xor -> 6

let alu_of_code = function
  | 0 -> Add | 1 -> Sub | 2 -> Adc | 3 -> Sbb | 4 -> And | 5 -> Or | 6 -> Xor
  | _ -> assert false

let shift_code = function Shl -> 0 | Shr -> 1 | Sar -> 2 | Rol -> 3 | Ror -> 4

let shift_of_code = function
  | 0 -> Shl | 1 -> Shr | 2 -> Sar | 3 -> Rol | 4 -> Ror | _ -> assert false

let cond_code c =
  let rec find i = if all_conds.(i) = c then i else find (i + 1) in
  find 0

let width_code = function W8 -> 0 | W16 -> 1 | W32 -> 2
let width_of_code = function 0 -> W8 | 1 -> W16 | 2 -> W32 | _ -> assert false
let scale_code = function S1 -> 0 | S2 -> 1 | S4 -> 2 | S8 -> 3
let scale_of_code = function 0 -> S1 | 1 -> S2 | 2 -> S4 | _ -> S8
let str_code = function Movs -> 0 | Stos -> 1 | Lods -> 2 | Scas -> 3 | Cmps -> 4

let str_of_code = function
  | 0 -> Movs | 1 -> Stos | 2 -> Lods | 3 -> Scas | 4 -> Cmps | _ -> assert false

let rep_code = function NoRep -> 0 | Rep -> 1 | Repe -> 2 | Repne -> 3
let rep_of_code = function 0 -> NoRep | 1 -> Rep | 2 -> Repe | _ -> Repne

let fbin_code = function Fadd -> 0 | Fsub -> 1 | Fmul -> 2 | Fdiv -> 3
let fbin_of_code = function 0 -> Fadd | 1 -> Fsub | 2 -> Fmul | _ -> Fdiv
let fun_code = function Fsqrt -> 0 | Fsin -> 1 | Fcos -> 2 | Fabs -> 3 | Fchs -> 4

let fun_of_code = function
  | 0 -> Fsqrt | 1 -> Fsin | 2 -> Fcos | 3 -> Fabs | 4 -> Fchs | _ -> assert false

let fits_i8 v = v >= -128 && v <= 127

(* --- emission helpers ------------------------------------------------- *)

let byte buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let i32 buf v =
  byte buf v;
  byte buf (v lsr 8);
  byte buf (v lsr 16);
  byte buf (v lsr 24)

let f64 buf x =
  let bits = Int64.bits_of_float x in
  for i = 0 to 7 do
    byte buf (Int64.to_int (Int64.shift_right_logical bits (8 * i)))
  done

let emit_mem buf { base; index; disp } =
  let shape =
    (match base with None -> 0 | Some _ -> 1)
    lor (match index with None -> 0 | Some _ -> 2)
    lor (match index with None -> 0 | Some (_, s) -> scale_code s lsl 2)
    lor if fits_i8 disp then 0x10 else 0
  in
  byte buf shape;
  (match base with None -> () | Some r -> byte buf (reg_index r));
  (match index with None -> () | Some (r, _) -> byte buf (reg_index r));
  if fits_i8 disp then byte buf disp else i32 buf disp

let mem_len { base; index; disp } =
  1
  + (match base with None -> 0 | Some _ -> 1)
  + (match index with None -> 0 | Some _ -> 1)
  + if fits_i8 disp then 1 else 4

let emit_operand buf = function
  | Reg r -> byte buf (reg_index r lsl 2)
  | Imm n ->
    byte buf 1;
    i32 buf n
  | Mem m ->
    byte buf 2;
    emit_mem buf m

let operand_len = function Reg _ -> 1 | Imm _ -> 5 | Mem m -> 1 + mem_len m

(* Control-transfer encodings use a fixed 4-byte relative displacement,
   measured from the end of the instruction. *)
let rel_len = 4

let rec length (i : insn) =
  match i with
  | Nop | Ret | Syscall | Halt -> 1
  | Mov (d, s) | Alu (_, d, s) | Cmp (d, s) | Test (d, s) ->
    1 + (match i with Alu _ -> 1 | _ -> 0) + operand_len d + operand_len s
  | Movx (_, _, _, m) -> 3 + mem_len m
  | Movw (_, m, _) -> 3 + mem_len m
  | Lea (_, m) -> 2 + mem_len m
  | Inc d | Dec d | Neg d | Not d -> 1 + operand_len d
  | Shift (_, d, c) -> 2 + operand_len d + operand_len c
  | Mul s | Imul s | Div s | Idiv s | Push s | JmpInd s | CallInd s ->
    1 + operand_len s
  | Imul2 (_, s) -> 2 + operand_len s
  | Pop _ -> 2
  | Jmp _ | Call _ -> 1 + rel_len
  | Jcc (_, _) -> 2 + rel_len
  | Cmov (_, _, s) -> 3 + operand_len s
  | Setcc (_, _) -> 3
  | Str (_, _, _) -> 2
  | Fld (_, m) -> 2 + mem_len m
  | Fst (m, _) -> 2 + mem_len m
  | Fmov _ | Fcmp _ | Fild _ | Fist _ -> 3
  | Fldi _ -> 2 + 8
  | Fbin _ -> 4
  | Fun_ _ -> 3

and encode ~pc (i : insn) =
  let buf = Buffer.create 8 in
  let rel target = Semantics.mask32 (target - (pc + length i)) in
  (match i with
  | Nop -> byte buf op_nop
  | Mov (d, s) ->
    byte buf op_mov;
    emit_operand buf d;
    emit_operand buf s
  | Movx (w, signed, r, m) ->
    byte buf op_movx;
    byte buf (width_code w lor if signed then 4 else 0);
    byte buf (reg_index r);
    emit_mem buf m
  | Movw (w, m, r) ->
    byte buf op_movw;
    byte buf (width_code w);
    byte buf (reg_index r);
    emit_mem buf m
  | Lea (r, m) ->
    byte buf op_lea;
    byte buf (reg_index r);
    emit_mem buf m
  | Alu (o, d, s) ->
    byte buf op_alu;
    byte buf (alu_code o);
    emit_operand buf d;
    emit_operand buf s
  | Cmp (d, s) ->
    byte buf op_cmp;
    emit_operand buf d;
    emit_operand buf s
  | Test (d, s) ->
    byte buf op_test;
    emit_operand buf d;
    emit_operand buf s
  | Inc d ->
    byte buf op_inc;
    emit_operand buf d
  | Dec d ->
    byte buf op_dec;
    emit_operand buf d
  | Neg d ->
    byte buf op_neg;
    emit_operand buf d
  | Not d ->
    byte buf op_not;
    emit_operand buf d
  | Shift (o, d, c) ->
    byte buf op_shift;
    byte buf (shift_code o);
    emit_operand buf d;
    emit_operand buf c
  | Mul s ->
    byte buf op_mul;
    emit_operand buf s
  | Imul s ->
    byte buf op_imul;
    emit_operand buf s
  | Imul2 (r, s) ->
    byte buf op_imul2;
    byte buf (reg_index r);
    emit_operand buf s
  | Div s ->
    byte buf op_div;
    emit_operand buf s
  | Idiv s ->
    byte buf op_idiv;
    emit_operand buf s
  | Push s ->
    byte buf op_push;
    emit_operand buf s
  | Pop r ->
    byte buf op_pop;
    byte buf (reg_index r)
  | Jmp t ->
    byte buf op_jmp;
    i32 buf (rel t)
  | JmpInd s ->
    byte buf op_jmpind;
    emit_operand buf s
  | Jcc (c, t) ->
    byte buf op_jcc;
    byte buf (cond_code c);
    i32 buf (rel t)
  | Call t ->
    byte buf op_call;
    i32 buf (rel t)
  | CallInd s ->
    byte buf op_callind;
    emit_operand buf s
  | Ret -> byte buf op_ret
  | Cmov (c, r, s) ->
    byte buf op_cmov;
    byte buf (cond_code c);
    byte buf (reg_index r);
    emit_operand buf s
  | Setcc (c, r) ->
    byte buf op_setcc;
    byte buf (cond_code c);
    byte buf (reg_index r)
  | Str (k, w, r) ->
    byte buf op_str;
    byte buf (str_code k lor (width_code w lsl 3) lor (rep_code r lsl 5))
  | Fld (f, m) ->
    byte buf op_fld;
    byte buf (freg_index f);
    emit_mem buf m
  | Fst (m, f) ->
    byte buf op_fst;
    byte buf (freg_index f);
    emit_mem buf m
  | Fmov (d, s) ->
    byte buf op_fmov;
    byte buf (freg_index d);
    byte buf (freg_index s)
  | Fldi (f, v) ->
    byte buf op_fldi;
    byte buf (freg_index f);
    f64 buf v
  | Fbin (o, d, s) ->
    byte buf op_fbin;
    byte buf (fbin_code o);
    byte buf (freg_index d);
    byte buf (freg_index s)
  | Fun_ (o, f) ->
    byte buf op_fun;
    byte buf (fun_code o);
    byte buf (freg_index f)
  | Fcmp (a, b) ->
    byte buf op_fcmp;
    byte buf (freg_index a);
    byte buf (freg_index b)
  | Fild (f, r) ->
    byte buf op_fild;
    byte buf (freg_index f);
    byte buf (reg_index r)
  | Fist (r, f) ->
    byte buf op_fist;
    byte buf (reg_index r);
    byte buf (freg_index f)
  | Syscall -> byte buf op_syscall
  | Halt -> byte buf op_halt);
  let b = Buffer.to_bytes buf in
  assert (Bytes.length b = length i);
  b

(* --- decoding --------------------------------------------------------- *)

type cursor = { fetch : int -> int; mutable pos : int }

let next cur =
  let v = cur.fetch cur.pos in
  cur.pos <- cur.pos + 1;
  v land 0xFF

let read_i32 cur =
  let a = next cur in
  let b = next cur in
  let c = next cur in
  let d = next cur in
  a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24)

let read_i8s cur =
  let v = next cur in
  if v >= 128 then v - 256 else v

let read_i32s cur =
  let v = read_i32 cur in
  if v land 0x80000000 <> 0 then v - 0x100000000 else v

let read_f64 cur =
  let bits = ref 0L in
  for i = 0 to 7 do
    bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (next cur)) (8 * i))
  done;
  Int64.float_of_bits !bits

let read_reg cur = reg_of_index (next cur land 7)
let read_freg cur = freg_of_index (next cur land 7)

let read_mem cur =
  let shape = next cur in
  let base = if shape land 1 <> 0 then Some (read_reg cur) else None in
  let index =
    if shape land 2 <> 0 then
      let r = read_reg cur in
      Some (r, scale_of_code ((shape lsr 2) land 3))
    else None
  in
  let disp = if shape land 0x10 <> 0 then read_i8s cur else read_i32s cur in
  { base; index; disp }

let read_operand ~at cur =
  let tag = next cur in
  match tag land 3 with
  | 0 -> Reg (reg_of_index ((tag lsr 2) land 7))
  | 1 -> Imm (read_i32 cur)
  | 2 -> Mem (read_mem cur)
  | _ -> raise (Bad_encoding at)

let decode ~fetch ~pc =
  let cur = { fetch; pos = pc } in
  let operand () = read_operand ~at:pc cur in
  let opcode = next cur in
  let insn =
    if opcode = op_nop then Nop
    else if opcode = op_mov then
      let d = operand () in
      let s = operand () in
      Mov (d, s)
    else if opcode = op_movx then begin
      let sub = next cur in
      let r = read_reg cur in
      Movx (width_of_code (sub land 3), sub land 4 <> 0, r, read_mem cur)
    end
    else if opcode = op_movw then begin
      let sub = next cur in
      let r = read_reg cur in
      Movw (width_of_code (sub land 3), read_mem cur, r)
    end
    else if opcode = op_lea then
      let r = read_reg cur in
      Lea (r, read_mem cur)
    else if opcode = op_alu then begin
      let sub = next cur in
      if sub > 6 then raise (Bad_encoding pc);
      let d = operand () in
      let s = operand () in
      Alu (alu_of_code sub, d, s)
    end
    else if opcode = op_cmp then
      let d = operand () in
      let s = operand () in
      Cmp (d, s)
    else if opcode = op_test then
      let d = operand () in
      let s = operand () in
      Test (d, s)
    else if opcode = op_inc then Inc (operand ())
    else if opcode = op_dec then Dec (operand ())
    else if opcode = op_neg then Neg (operand ())
    else if opcode = op_not then Not (operand ())
    else if opcode = op_shift then begin
      let sub = next cur in
      if sub > 4 then raise (Bad_encoding pc);
      let d = operand () in
      let c = operand () in
      Shift (shift_of_code sub, d, c)
    end
    else if opcode = op_mul then Mul (operand ())
    else if opcode = op_imul then Imul (operand ())
    else if opcode = op_imul2 then
      let r = read_reg cur in
      Imul2 (r, operand ())
    else if opcode = op_div then Div (operand ())
    else if opcode = op_idiv then Idiv (operand ())
    else if opcode = op_push then Push (operand ())
    else if opcode = op_pop then Pop (read_reg cur)
    else if opcode = op_jmp then
      let rel = read_i32s cur in
      Jmp (Semantics.mask32 (cur.pos + rel))
    else if opcode = op_jmpind then JmpInd (operand ())
    else if opcode = op_jcc then begin
      let c = next cur in
      if c >= Array.length all_conds then raise (Bad_encoding pc);
      let rel = read_i32s cur in
      Jcc (all_conds.(c), Semantics.mask32 (cur.pos + rel))
    end
    else if opcode = op_call then
      let rel = read_i32s cur in
      Call (Semantics.mask32 (cur.pos + rel))
    else if opcode = op_callind then CallInd (operand ())
    else if opcode = op_ret then Ret
    else if opcode = op_cmov then begin
      let c = next cur in
      if c >= Array.length all_conds then raise (Bad_encoding pc);
      let r = read_reg cur in
      Cmov (all_conds.(c), r, operand ())
    end
    else if opcode = op_setcc then begin
      let c = next cur in
      if c >= Array.length all_conds then raise (Bad_encoding pc);
      Setcc (all_conds.(c), read_reg cur)
    end
    else if opcode = op_str then begin
      let sub = next cur in
      if sub land 7 > 4 || (sub lsr 3) land 3 > 2 then raise (Bad_encoding pc);
      Str (str_of_code (sub land 7), width_of_code ((sub lsr 3) land 3), rep_of_code (sub lsr 5))
    end
    else if opcode = op_fld then
      let f = read_freg cur in
      Fld (f, read_mem cur)
    else if opcode = op_fst then
      let f = read_freg cur in
      Fst (read_mem cur, f)
    else if opcode = op_fmov then
      let d = read_freg cur in
      Fmov (d, read_freg cur)
    else if opcode = op_fldi then
      let f = read_freg cur in
      Fldi (f, read_f64 cur)
    else if opcode = op_fbin then begin
      let sub = next cur in
      if sub > 3 then raise (Bad_encoding pc);
      let d = read_freg cur in
      Fbin (fbin_of_code sub, d, read_freg cur)
    end
    else if opcode = op_fun then begin
      let sub = next cur in
      if sub > 4 then raise (Bad_encoding pc);
      Fun_ (fun_of_code sub, read_freg cur)
    end
    else if opcode = op_fcmp then
      let a = read_freg cur in
      Fcmp (a, read_freg cur)
    else if opcode = op_fild then
      let f = read_freg cur in
      Fild (f, read_reg cur)
    else if opcode = op_fist then
      let r = read_reg cur in
      Fist (r, read_freg cur)
    else if opcode = op_syscall then Syscall
    else if opcode = op_halt then Halt
    else raise (Bad_encoding pc)
  in
  (insn, cur.pos - pc)

(* --- canonicalization -------------------------------------------------- *)

let canon_operand = function
  | Imm n -> Imm (Semantics.mask32 n)
  | (Reg _ | Mem _) as o -> o

let canonical = function
  | Mov (d, s) -> Mov (canon_operand d, canon_operand s)
  | Alu (o, d, s) -> Alu (o, canon_operand d, canon_operand s)
  | Cmp (d, s) -> Cmp (canon_operand d, canon_operand s)
  | Test (d, s) -> Test (canon_operand d, canon_operand s)
  | Inc d -> Inc (canon_operand d)
  | Dec d -> Dec (canon_operand d)
  | Neg d -> Neg (canon_operand d)
  | Not d -> Not (canon_operand d)
  | Shift (o, d, c) -> Shift (o, canon_operand d, canon_operand c)
  | Mul s -> Mul (canon_operand s)
  | Imul s -> Imul (canon_operand s)
  | Imul2 (r, s) -> Imul2 (r, canon_operand s)
  | Div s -> Div (canon_operand s)
  | Idiv s -> Idiv (canon_operand s)
  | Push s -> Push (canon_operand s)
  | JmpInd s -> JmpInd (canon_operand s)
  | CallInd s -> CallInd (canon_operand s)
  | Cmov (c, r, s) -> Cmov (c, r, canon_operand s)
  | i -> i
