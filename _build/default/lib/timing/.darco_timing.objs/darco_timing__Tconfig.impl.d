lib/timing/tconfig.ml:
