lib/timing/tlb.mli: Tconfig
