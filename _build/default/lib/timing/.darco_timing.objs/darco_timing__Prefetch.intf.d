lib/timing/prefetch.mli: Cache Tconfig
