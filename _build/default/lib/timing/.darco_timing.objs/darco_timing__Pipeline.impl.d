lib/timing/pipeline.ml: Array Cache Code Darco_host Emulator Format List Predictor Prefetch Tconfig Tlb
