lib/timing/cache.mli: Tconfig
