lib/timing/tconfig.mli:
