lib/timing/prefetch.ml: Array Cache Tconfig
