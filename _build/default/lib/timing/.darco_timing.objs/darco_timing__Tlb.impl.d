lib/timing/tlb.ml: Array Tconfig
