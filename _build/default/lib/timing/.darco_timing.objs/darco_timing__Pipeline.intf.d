lib/timing/pipeline.mli: Cache Darco_host Emulator Format Tconfig
