lib/timing/cache.ml: Array Tconfig
