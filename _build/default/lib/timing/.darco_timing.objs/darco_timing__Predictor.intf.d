lib/timing/predictor.mli: Tconfig
