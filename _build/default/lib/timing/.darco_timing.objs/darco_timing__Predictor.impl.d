lib/timing/predictor.ml: Array Tconfig
