type cache_geom = { sets : int; ways : int; line : int; latency : int }
type tlb_geom = { entries : int; latency : int }

type t = {
  fetch_width : int;
  decode_depth : int;
  issue_width : int;
  iq_size : int;
  phys_regs : int;
  n_simple : int;
  n_complex : int;
  n_vector : int;
  mem_read_ports : int;
  mem_write_ports : int;
  complex_mul_latency : int;
  fp_latency : int;
  fp_div_latency : int;
  gshare_bits : int;
  btb_entries : int;
  mispredict_penalty : int;
  il1 : cache_geom;
  dl1 : cache_geom;
  l2 : cache_geom;
  itlb : tlb_geom;
  dtlb : tlb_geom;
  l2tlb : tlb_geom;
  tlb_walk_latency : int;
  mem_latency : int;
  prefetch : bool;
  prefetch_table : int;
  prefetch_degree : int;
  vector_length : int;
}

let default =
  {
    fetch_width = 2;
    decode_depth = 3;
    issue_width = 2;
    iq_size = 32;
    phys_regs = 96;
    n_simple = 2;
    n_complex = 1;
    n_vector = 1;
    mem_read_ports = 1;
    mem_write_ports = 1;
    complex_mul_latency = 3;
    fp_latency = 4;
    fp_div_latency = 12;
    gshare_bits = 12;
    btb_entries = 512;
    mispredict_penalty = 8;
    il1 = { sets = 64; ways = 4; line = 64; latency = 1 };
    dl1 = { sets = 64; ways = 4; line = 64; latency = 2 };
    l2 = { sets = 512; ways = 8; line = 64; latency = 12 };
    itlb = { entries = 32; latency = 0 };
    dtlb = { entries = 64; latency = 0 };
    l2tlb = { entries = 512; latency = 6 };
    tlb_walk_latency = 30;
    mem_latency = 120;
    prefetch = true;
    prefetch_table = 64;
    prefetch_degree = 2;
    vector_length = 128;
  }

let narrow =
  {
    default with
    fetch_width = 1;
    issue_width = 1;
    n_simple = 1;
    iq_size = 8;
    phys_regs = 48;
  }

let wide =
  {
    default with
    fetch_width = 4;
    issue_width = 4;
    n_simple = 4;
    n_complex = 2;
    mem_read_ports = 2;
    iq_size = 64;
    phys_regs = 160;
  }
