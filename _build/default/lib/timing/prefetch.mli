(** PC-indexed stride data prefetcher.  When a load PC shows a stable
    stride, the next [degree] strided lines are filled into the data
    cache. *)

type t

type stats = { mutable issued : int; mutable triggered : int }

val create : Tconfig.t -> into:Cache.t -> t
val observe : t -> pc:int -> addr:int -> unit
val stats : t -> stats
