(** Timing-simulator parameters — the paper's list: issue width, instruction
    queue size, numbers and latencies of execution units, physical register
    count, branch predictor and BTB sizes, cache and TLB geometries and
    latencies, memory ports, and the stride prefetcher. *)

type cache_geom = {
  sets : int;
  ways : int;
  line : int;       (** bytes, power of two *)
  latency : int;    (** hit latency in cycles *)
}

type tlb_geom = { entries : int; latency : int }

type t = {
  fetch_width : int;
  decode_depth : int;        (** front-end stages after fetch *)
  issue_width : int;
  iq_size : int;
  phys_regs : int;           (** cap on in-flight results *)
  n_simple : int;
  n_complex : int;
  n_vector : int;            (** reserved for the SIMD extension *)
  mem_read_ports : int;
  mem_write_ports : int;
  complex_mul_latency : int;
  fp_latency : int;
  fp_div_latency : int;
  gshare_bits : int;         (** log2 PHT entries *)
  btb_entries : int;
  mispredict_penalty : int;
  il1 : cache_geom;
  dl1 : cache_geom;
  l2 : cache_geom;
  itlb : tlb_geom;
  dtlb : tlb_geom;
  l2tlb : tlb_geom;
  tlb_walk_latency : int;
  mem_latency : int;
  prefetch : bool;
  prefetch_table : int;
  prefetch_degree : int;
  vector_length : int;       (** SIMD width parameter (reserved) *)
}

val default : t

val narrow : t
(** 1-wide baseline core. *)

val wide : t
(** 4-wide configuration. *)
