type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?aligns ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  let note_row r = List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) r in
  List.iter note_row all;
  let aligns =
    match aligns with
    | Some a -> Array.of_list a
    | None -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let align_of i = if i < Array.length aligns then aligns.(i) else Right in
  let line r =
    r |> List.mapi (fun i c -> pad (align_of i) widths.(i) c) |> String.concat "  "
  in
  let sep = String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  String.concat "\n" (line header :: sep :: List.map line rows)

(* One glyph per series, cycling if there are more series than glyphs. *)
let glyphs = [| '#'; '='; '.'; '+'; '~'; ':'; '%'; '@' |]

let stacked_bars ~labels ~series =
  let width = 50 in
  let label_w = List.fold_left (fun acc l -> max acc (String.length l)) 0 labels in
  let buf = Buffer.create 1024 in
  let legend =
    List.mapi
      (fun i (name, _) -> Printf.sprintf "%c=%s" glyphs.(i mod Array.length glyphs) name)
      series
  in
  Buffer.add_string buf ("  legend: " ^ String.concat "  " legend ^ "\n");
  List.iteri
    (fun li label ->
      let vals = List.map (fun (_, arr) -> arr.(li)) series in
      let total = List.fold_left ( +. ) 0.0 vals in
      let bar = Buffer.create width in
      let used = ref 0 in
      List.iteri
        (fun si v ->
          let share = if total = 0.0 then 0.0 else v /. total in
          let n =
            if si = List.length series - 1 then width - !used
            else int_of_float (Float.round (share *. float_of_int width))
          in
          let n = max 0 (min n (width - !used)) in
          Buffer.add_string bar (String.make n glyphs.(si mod Array.length glyphs));
          used := !used + n)
        vals;
      Buffer.add_string buf
        (Printf.sprintf "  %s |%s|\n" (pad Left label_w label) (Buffer.contents bar)))
    labels;
  Buffer.contents buf

let bar_chart ~labels ~values ~unit =
  let vmax = Array.fold_left max 0.0 values in
  let width = 40 in
  let label_w = List.fold_left (fun acc l -> max acc (String.length l)) 0 labels in
  let buf = Buffer.create 1024 in
  List.iteri
    (fun i label ->
      let v = values.(i) in
      let n =
        if vmax = 0.0 then 0 else int_of_float (Float.round (v /. vmax *. float_of_int width))
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s |%s %.2f %s\n" (pad Left label_w label) (String.make n '#') v unit))
    labels;
  Buffer.contents buf
