(** ASCII rendering of result tables and stacked-percentage "figures".

    The bench harness uses this to print, for every figure in the paper, the
    same rows/series the paper plots. *)

type align = Left | Right

val render : ?aligns:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays the rows out in a column-aligned grid with a
    separator under the header.  [aligns] defaults to left for the first
    column and right for the rest. *)

val stacked_bars :
  labels:string list -> series:(string * float array) list -> string
(** [stacked_bars ~labels ~series] renders a horizontal 100%-stacked bar per
    label, in the manner of the paper's Figures 4, 6 and 7.  Each series is
    an array with one value per label; values are normalised per label. *)

val bar_chart : labels:string list -> values:float array -> unit:string -> string
(** Horizontal bar chart for a single series (Figure 5 style). *)
