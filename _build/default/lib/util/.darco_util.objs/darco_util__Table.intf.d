lib/util/table.mli:
