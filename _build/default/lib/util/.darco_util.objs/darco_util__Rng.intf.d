lib/util/rng.mli:
