lib/util/stats_math.ml: Array List
