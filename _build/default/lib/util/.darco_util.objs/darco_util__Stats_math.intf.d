lib/util/stats_math.mli:
