lib/power/model.mli: Darco_timing Format
