lib/power/model.ml: Darco_timing Format
