open Darco_guest

type reg = int
type binop = Add | Sub | Mul | And | Or | Xor

type insn =
  | Li of reg * int
  | Bini of binop * reg * reg * int
  | Bin of binop * reg * reg * reg
  | Lw of reg * reg * int
  | Sw of reg * reg * int
  | Beq of reg * reg * int
  | Bne of reg * reg * int
  | Blt of reg * reg * int
  | J of int
  | Halt

let insn_bytes = 8
let guest_reg (r : reg) = Isa.all_regs.(r land 7)

let binop_code = function Add -> 0 | Sub -> 1 | Mul -> 2 | And -> 3 | Or -> 4 | Xor -> 5

let binop_of_code = function
  | 0 -> Add | 1 -> Sub | 2 -> Mul | 3 -> And | 4 -> Or | _ -> Xor

let encode insn =
  let b = Bytes.make insn_bytes '\000' in
  let set_imm v = Bytes.set_int32_le b 4 (Int32.of_int v) in
  (match insn with
  | Li (rd, imm) ->
    Bytes.set b 0 '\001';
    Bytes.set b 1 (Char.chr rd);
    set_imm imm
  | Bini (op, rd, ra, imm) ->
    Bytes.set b 0 '\002';
    Bytes.set b 1 (Char.chr rd);
    Bytes.set b 2 (Char.chr ra);
    Bytes.set b 3 (Char.chr (binop_code op));
    set_imm imm
  | Bin (op, rd, ra, rb) ->
    Bytes.set b 0 '\003';
    Bytes.set b 1 (Char.chr rd);
    Bytes.set b 2 (Char.chr ra);
    Bytes.set b 3 (Char.chr ((binop_code op lsl 4) lor rb));
    set_imm 0
  | Lw (rd, ra, imm) ->
    Bytes.set b 0 '\004';
    Bytes.set b 1 (Char.chr rd);
    Bytes.set b 2 (Char.chr ra);
    set_imm imm
  | Sw (rd, ra, imm) ->
    Bytes.set b 0 '\005';
    Bytes.set b 1 (Char.chr rd);
    Bytes.set b 2 (Char.chr ra);
    set_imm imm
  | Beq (ra, rb, t) ->
    Bytes.set b 0 '\006';
    Bytes.set b 1 (Char.chr ra);
    Bytes.set b 2 (Char.chr rb);
    set_imm t
  | Bne (ra, rb, t) ->
    Bytes.set b 0 '\007';
    Bytes.set b 1 (Char.chr ra);
    Bytes.set b 2 (Char.chr rb);
    set_imm t
  | Blt (ra, rb, t) ->
    Bytes.set b 0 '\008';
    Bytes.set b 1 (Char.chr ra);
    Bytes.set b 2 (Char.chr rb);
    set_imm t
  | J t ->
    Bytes.set b 0 '\009';
    set_imm t
  | Halt -> Bytes.set b 0 '\010');
  b

let decode ~fetch ~pc =
  let byte i = fetch (pc + i) land 0xFF in
  let imm =
    let v = byte 4 lor (byte 5 lsl 8) lor (byte 6 lsl 16) lor (byte 7 lsl 24) in
    if v land 0x80000000 <> 0 then v - 0x100000000 else v
  in
  match byte 0 with
  | 1 -> Li (byte 1, imm)
  | 2 -> Bini (binop_of_code (byte 3), byte 1, byte 2, imm)
  | 3 -> Bin (binop_of_code (byte 3 lsr 4), byte 1, byte 2, byte 3 land 7)
  | 4 -> Lw (byte 1, byte 2, imm)
  | 5 -> Sw (byte 1, byte 2, imm)
  | 6 -> Beq (byte 1, byte 2, Semantics.mask32 imm)
  | 7 -> Bne (byte 1, byte 2, Semantics.mask32 imm)
  | 8 -> Blt (byte 1, byte 2, Semantics.mask32 imm)
  | 9 -> J (Semantics.mask32 imm)
  | 10 -> Halt
  | op -> invalid_arg (Printf.sprintf "Grisc.decode: bad opcode %d at 0x%x" op pc)

let eval_binop op a b =
  match op with
  | Add -> Semantics.mask32 (a + b)
  | Sub -> Semantics.mask32 (a - b)
  | Mul ->
    let lo, _, _ = Semantics.mul_u a b in
    lo
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b

module Interp = struct
  let step (cpu : Cpu.t) mem insn =
    let get r = Cpu.get cpu (guest_reg r) in
    let set r v = Cpu.set cpu (guest_reg r) v in
    let next = Semantics.mask32 (cpu.eip + insn_bytes) in
    match insn with
    | Li (rd, imm) ->
      set rd (Semantics.mask32 imm);
      cpu.eip <- next
    | Bini (op, rd, ra, imm) ->
      set rd (eval_binop op (get ra) (Semantics.mask32 imm));
      cpu.eip <- next
    | Bin (op, rd, ra, rb) ->
      set rd (eval_binop op (get ra) (get rb));
      cpu.eip <- next
    | Lw (rd, ra, imm) ->
      set rd (Memory.read mem W32 (Semantics.mask32 (get ra + imm)));
      cpu.eip <- next
    | Sw (rd, ra, imm) ->
      Memory.write mem W32 (Semantics.mask32 (get ra + imm)) (get rd);
      cpu.eip <- next
    | Beq (ra, rb, t) -> cpu.eip <- (if get ra = get rb then t else next)
    | Bne (ra, rb, t) -> cpu.eip <- (if get ra <> get rb then t else next)
    | Blt (ra, rb, t) ->
      cpu.eip <-
        (if Semantics.signed (get ra) < Semantics.signed (get rb) then t else next)
    | J t -> cpu.eip <- t
    | Halt -> cpu.halted <- true

  let run ?(fuel = 1_000_000) cpu mem =
    let steps = ref 0 in
    while (not cpu.Cpu.halted) && !steps < fuel do
      incr steps;
      step cpu mem (decode ~fetch:(Memory.read8 mem) ~pc:cpu.Cpu.eip)
    done
end

module Frontend = struct
  module T = Darco.Translate

  let translate_insn ctx insn ~pc =
    ignore pc;
    (match insn with
    | Li (rd, imm) -> T.set_reg ctx (guest_reg rd) (T.li ctx imm)
    | Bini (op, rd, ra, imm) ->
      let a = T.get_reg ctx (guest_reg ra) in
      let d = T.fresh_vreg ctx in
      let hop : Darco_host.Code.binop =
        match op with Add -> Add | Sub -> Sub | Mul -> Mul | And -> And | Or -> Or | Xor -> Xor
      in
      T.emit_ir ctx (Darco.Ir.Ibini (hop, d, a, imm));
      T.set_reg ctx (guest_reg rd) d
    | Bin (op, rd, ra, rb) ->
      let a = T.get_reg ctx (guest_reg ra) in
      let b = T.get_reg ctx (guest_reg rb) in
      let d = T.fresh_vreg ctx in
      let hop : Darco_host.Code.binop =
        match op with Add -> Add | Sub -> Sub | Mul -> Mul | And -> And | Or -> Or | Xor -> Xor
      in
      T.emit_ir ctx (Darco.Ir.Ibin (hop, d, a, b));
      T.set_reg ctx (guest_reg rd) d
    | Lw (rd, ra, imm) ->
      let a = T.get_reg ctx (guest_reg ra) in
      let d = T.fresh_vreg ctx in
      T.emit_ir ctx (Darco.Ir.Iload (W32, false, d, a, imm));
      T.set_reg ctx (guest_reg rd) d
    | Sw (rd, ra, imm) ->
      let v = T.get_reg ctx (guest_reg rd) in
      let a = T.get_reg ctx (guest_reg ra) in
      T.emit_ir ctx (Darco.Ir.Istore (W32, v, a, imm))
    | Beq _ | Bne _ | Blt _ | J _ | Halt ->
      invalid_arg "Grisc.Frontend.translate_insn: control transfer");
    T.add_retired ctx 1

  let translate_block ~entry_pc insns =
    let ctx = T.create ~entry_pc in
    let rec go pc = function
      | [] -> T.emit_exit ctx (Darco.Ir.Xdirect pc)
      | [ Halt ] ->
        T.add_retired ctx 1;
        T.emit_exit ctx Darco.Ir.Xhalt
      | [ J t ] ->
        T.add_retired ctx 1;
        T.emit_exit ctx (Darco.Ir.Xdirect t)
      | [ (Beq (ra, rb, t) | Bne (ra, rb, t) | Blt (ra, rb, t)) as br ] ->
        T.add_retired ctx 1;
        let a = T.get_reg ctx (guest_reg ra) in
        let b = T.get_reg ctx (guest_reg rb) in
        let cmp : Darco_host.Code.cmp =
          match br with Beq _ -> Beq | Bne _ -> Bne | _ -> Blt
        in
        let fall = Semantics.mask32 (pc + insn_bytes) in
        T.emit_branch_to_stub ctx (T.Cfused (cmp, a, b)) (fun ctx ->
            T.emit_exit ctx (Darco.Ir.Xdirect t));
        T.emit_exit ctx (Darco.Ir.Xdirect fall)
      | insn :: rest ->
        translate_insn ctx insn ~pc;
        go (Semantics.mask32 (pc + insn_bytes)) rest
    in
    go entry_pc insns;
    T.finalize ctx ~mode:`Super ~prof:None
end
