lib/grisc/grisc.mli: Bytes Cpu Darco Darco_guest Memory
