lib/grisc/grisc.ml: Array Bytes Char Cpu Darco Darco_guest Darco_host Int32 Isa Memory Printf Semantics
