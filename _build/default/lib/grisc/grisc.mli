open Darco_guest

(** Grisc: a second guest ISA, demonstrating the multi-guest-ISA design
    requirement (§IV "Support for multiple guest ISAs").

    A tiny 32-bit RISC with eight registers that map onto the same guest
    register file slots the co-designed hardware provides.  Only a decoder
    and per-instruction IR emitter ({!Frontend}) are Grisc-specific:
    everything from SSA to code generation is shared with the x86
    front-end, exactly as §V-D describes. *)

type reg = int
(** 0..7; occupies guest register slot [Isa.all_regs.(r)]. *)

type binop = Add | Sub | Mul | And | Or | Xor

type insn =
  | Li of reg * int
  | Bini of binop * reg * reg * int     (** rd <- ra op imm *)
  | Bin of binop * reg * reg * reg
  | Lw of reg * reg * int               (** rd <- [ra + imm] *)
  | Sw of reg * reg * int               (** [ra + imm] <- rd *)
  | Beq of reg * reg * int              (** absolute guest target *)
  | Bne of reg * reg * int
  | Blt of reg * reg * int
  | J of int
  | Halt

val encode : insn -> Bytes.t
(** Fixed 8-byte encoding. *)

val decode : fetch:(int -> int) -> pc:int -> insn
(** Raises [Invalid_argument] on a bad opcode. *)

val insn_bytes : int

module Interp : sig
  val step : Cpu.t -> Memory.t -> insn -> unit
  (** Execute one decoded instruction (shares {!Darco_guest.Cpu} /
      {!Darco_guest.Memory} with the rest of the infrastructure; EIP
      handling included). *)

  val run : ?fuel:int -> Cpu.t -> Memory.t -> unit
  (** Fetch/decode/execute until HALT. *)
end

module Frontend : sig
  val translate_insn : Darco.Translate.ctx -> insn -> pc:int -> unit
  (** Emit the IR for one non-control Grisc instruction into a region under
      construction — the "additional software decoder" of §V-D. *)

  val translate_block : entry_pc:int -> insn list -> Darco.Regionir.t
  (** Translate a block: straight-line instructions ending at the first
      control transfer (or falling through).  The result goes through the
      shared optimizer/scheduler/codegen unchanged. *)
end
