examples/debug_toolchain.ml: Asm Darco Darco_guest Format Printf
