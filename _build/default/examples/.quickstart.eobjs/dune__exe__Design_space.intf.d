examples/design_space.mli:
