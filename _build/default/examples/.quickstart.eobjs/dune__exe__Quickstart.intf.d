examples/quickstart.mli:
