examples/quickstart.ml: Asm Char Darco Darco_guest Format List Printf String
