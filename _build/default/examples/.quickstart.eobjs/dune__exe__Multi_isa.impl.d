examples/multi_isa.ml: Array Cpu Darco Darco_grisc Darco_guest Darco_host Format Isa List Loader Memory Printf
