examples/debug_toolchain.mli:
