examples/hot_loop_optimizer.mli:
