examples/design_space.ml: Darco Darco_power Darco_timing Darco_util Darco_workloads List Printf
