examples/multi_isa.mli:
