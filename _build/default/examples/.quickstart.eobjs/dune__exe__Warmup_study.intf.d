examples/warmup_study.mli:
