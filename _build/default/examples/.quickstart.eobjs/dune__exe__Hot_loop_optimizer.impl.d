examples/hot_loop_optimizer.ml: Array Asm Codegen Config Darco Darco_guest Darco_host Format Gbb Ir Isa List Loader Memory Printf Profile Program Regalloc Regiongen Step Tolmem
