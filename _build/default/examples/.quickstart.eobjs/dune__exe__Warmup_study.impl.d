examples/warmup_study.ml: Darco_studies Darco_workloads Format
