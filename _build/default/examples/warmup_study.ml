(* The §VI-E warm-up methodology as a library user would run it: pick a
   workload, choose sample points, and compare the threshold-downscaled
   warm-up against full detailed simulation and against the conventional
   long warm-up.

     dune exec examples/warmup_study.exe *)

let () =
  let program = (Darco_workloads.Registry.find "445.gobmk").build ~scale:3 () in
  let report =
    Darco_studies.Warmup.run_study ~program ~seed:7
      ~sample_offsets:[ 500_000; 1_000_000 ]
      ~window:25_000 ()
  in
  Format.printf "%a@." Darco_studies.Warmup.pp_report report
