(* A look inside the Translation Optimization Layer: take a hot guest loop,
   show its BBM translation, then the superblock the optimizer builds for
   it — IR before and after the optimization pipeline, and the final host
   code with the counted loop unrolled and branches fused.

     dune exec examples/hot_loop_optimizer.exe *)

open Darco_guest
open Darco

(* The guest loop: a dot-product-style kernel with a memory operand, flag
   consumption and a counted back edge. *)
let program () =
  let a = Asm.create ~base:0x1000 () in
  Asm.jmp a "start";
  Asm.label a "data";
  for i = 1 to 64 do
    Asm.dword a (i * 3)
  done;
  Asm.label a "start";
  Asm.insn a (Mov (Reg EAX, Imm 0));
  Asm.insn a (Mov (Reg ESI, Imm 0));
  Asm.insn a (Mov (Reg ECX, Imm 64));
  Asm.label a "loop";
  Asm.insn_with a (fun resolve ->
      Isa.Mov (Reg EDX, Mem { base = Some ESI; index = None; disp = resolve "data" }));
  Asm.insn a (Imul2 (EDX, Imm 5));
  Asm.insn a (Alu (Add, Reg EAX, Reg EDX));
  Asm.insn a (Alu (Add, Reg ESI, Imm 4));
  Asm.insn a (Dec (Reg ECX));
  Asm.jcc a NE "loop";
  Asm.insn a Halt;
  Asm.assemble ~entry:"start" a

let () =
  let program = program () in
  let cpu, mem = Loader.boot program in
  ignore cpu;
  let icache = Step.icache_create () in
  let tolmem_mem = Memory.create `Auto_zero in
  (* a throwaway co-designed memory image for counter allocation *)
  List.iter
    (fun (addr, b) -> Memory.blit_bytes tolmem_mem addr b)
    program.chunks;
  let tolmem = Tolmem.create tolmem_mem in
  let profile = Profile.create tolmem in
  let cfg = Config.default in
  let loop_pc = Program.symbol program "loop" in

  print_endline "=== 1. the guest basic block ===";
  let bb = Gbb.decode icache mem loop_pc in
  List.iter (fun (insn, pc, _) -> Printf.printf "  0x%x: %s\n" pc (Isa.to_string insn)) bb.body;
  Printf.printf "  (terminator: conditional branch back to 0x%x)\n\n" loop_pc;

  print_endline "=== 2. BBM translation (profiling prologue + edge stubs) ===";
  let bbm = Regiongen.translate_bb cfg profile icache mem loop_pc in
  Format.printf "%a@." Ir.pp_block bbm.body;

  print_endline "=== 3. superblock (unrolled, optimized, scheduled) IR ===";
  (* pretend the edge counters show a strongly biased back edge *)
  let sb =
    Regiongen.build_superblock cfg profile icache mem ~head_pc:loop_pc
      ~use_asserts:true ~use_mem_speculation:true
  in
  Printf.printf "(unrolled: %b, guest insns on main path: %d)\n" sb.unrolled
    sb.region.guest_len;
  Format.printf "%a@." Ir.pp_block sb.region.body;

  print_endline "=== 4. host code after register allocation ===";
  let alloc = Regalloc.allocate sb.region in
  let code, _exits =
    Codegen.lower cfg sb.region ~alloc ~spill_base:0xF0001000 ~ibtc_base:0xF0000000
  in
  Array.iteri
    (fun i insn -> Printf.printf "  @%d: %s\n" i (Format.asprintf "%a" Darco_host.Code.pp_insn insn))
    code;
  Printf.printf "\nhost instructions: %d for %d guest instructions per unrolled pass\n"
    (Array.length code) sb.region.guest_len
