(* The multiple-guest-ISA requirement (§IV) in action: a program written in
   Grisc — a second, RISC guest ISA — is decoded by its own tiny front-end
   and flows through the *shared* SSA/optimizer/scheduler/code-generator,
   then executes on the host emulator; the Grisc reference interpreter
   validates the result.

     dune exec examples/multi_isa.exe *)

open Darco_guest
module G = Darco_grisc.Grisc

(* sum of squares 1..20, in Grisc: r0 = acc, r1 = i, r7 = 0 *)
let block =
  [
    G.Bin (Mul, 2, 1, 1);     (* r2 = i*i *)
    G.Bin (Add, 0, 0, 2);     (* acc += r2 *)
    G.Bini (Sub, 1, 1, 1);    (* i -= 1 *)
    G.Bne (1, 7, 0x1000);     (* loop while i <> 0 *)
  ]

let () =
  print_endline "=== Grisc source block ===";
  List.iteri (fun i insn -> Printf.printf "  %d: %s\n" i
    (match insn with
     | G.Bin (Mul, d, a, b) -> Printf.sprintf "mul r%d, r%d, r%d" d a b
     | G.Bin (Add, d, a, b) -> Printf.sprintf "add r%d, r%d, r%d" d a b
     | G.Bini (Sub, d, a, k) -> Printf.sprintf "subi r%d, r%d, %d" d a k
     | G.Bne (a, b, t) -> Printf.sprintf "bne r%d, r%d, 0x%x" a b t
     | _ -> "?")) block;

  (* reference execution on the Grisc interpreter *)
  let ref_cpu = Cpu.create () in
  Cpu.set ref_cpu Isa.all_regs.(0) 0;
  Cpu.set ref_cpu Isa.all_regs.(1) 20;
  let ref_mem = Memory.create `Auto_zero in
  ref_cpu.eip <- 0x1000;
  let rec interp () =
    List.iter (fun i -> G.Interp.step ref_cpu ref_mem i) block;
    if ref_cpu.eip = 0x1000 then interp ()
  in
  interp ();

  (* shared pipeline: front-end -> optimizer -> scheduler -> host code *)
  let region = G.Frontend.translate_block ~entry_pc:0x1000 block in
  let region = Darco.Opt.run Darco.Config.default region in
  let region = Darco.Sched.run Darco.Config.default region in
  print_endline "\n=== after the shared optimizer/scheduler (IR) ===";
  Format.printf "%a@." Darco.Ir.pp_block region.body;

  let alloc = Darco.Regalloc.allocate region in
  let code, _ =
    Darco.Codegen.lower Darco.Config.default region ~alloc
      ~spill_base:(Loader.tol_base + 0x1000) ~ibtc_base:Loader.tol_base
  in
  print_endline "=== generated host code ===";
  Array.iteri
    (fun i insn ->
      Printf.printf "  @%d: %s\n" i (Format.asprintf "%a" Darco_host.Code.pp_insn insn))
    code;

  (* run it on the host hardware model, chasing the self re-entry *)
  let hw : Darco_host.Code.region =
    { id = 0; entry_pc = 0x1000; mode = `Super; base = 0xC0000000; code;
      incoming = []; invalidated = false }
  in
  let cpu = Cpu.create () in
  Cpu.set cpu Isa.all_regs.(0) 0;
  Cpu.set cpu Isa.all_regs.(1) 20;
  let m = Darco_host.Machine.create (Memory.create `Auto_zero) in
  Darco_host.Machine.copy_guest_in m cpu;
  let rec chase () =
    match (Darco_host.Emulator.run m ~resolve:(fun _ -> None) hw).stop with
    | Darco_host.Emulator.Stop_exit e -> (
      match e.kind with
      | Darco_host.Code.Exit_direct 0x1000 -> chase ()
      | _ -> ())
    | _ -> failwith "unexpected stop"
  in
  chase ();
  Darco_host.Machine.copy_guest_out m cpu;

  Printf.printf "\nGrisc interpreter result: %d\nshared-pipeline result:   %d\n"
    (Cpu.get ref_cpu Isa.all_regs.(0))
    (Cpu.get cpu Isa.all_regs.(0));
  assert (Cpu.get ref_cpu Isa.all_regs.(0) = Cpu.get cpu Isa.all_regs.(0));
  print_endline "results agree: one TOL back end, two guest ISAs"
