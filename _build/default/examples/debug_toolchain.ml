(* The debug toolchain in action: inject a deliberate miscompilation into
   one of the TOL's optimization passes, watch the controller's state
   validation catch the divergence, and let the toolchain pinpoint the
   faulty basic block and bisect to the culprit pass.

     dune exec examples/debug_toolchain.exe *)

open Darco_guest

(* A hot loop with a genuine store-to-load dependence through memory, via
   two different address expressions (so the translator must treat them as
   "may alias"): exactly the code shape the injected bugs corrupt. *)
let program () =
  let a = Asm.create ~base:0x1000 () in
  Asm.insn a (Mov (Reg EBX, Imm 0));
  Asm.insn a (Mov (Reg EBP, Imm 0x5000));
  Asm.insn a (Mov (Reg ECX, Imm 4000));
  Asm.label a "loop";
  (* store the counter through an absolute address ... *)
  Asm.insn a (Mov (Mem { base = None; index = None; disp = 0x5000 }, Reg ECX));
  (* ... and immediately load it back through a register base *)
  Asm.insn a (Mov (Reg EAX, Mem { base = Some EBP; index = None; disp = 0 }));
  Asm.insn a (Alu (Add, Reg EBX, Reg EAX));
  Asm.insn a (Dec (Reg ECX));
  Asm.jcc a NE "loop";
  Asm.insn a (Mov (Reg EAX, Imm 1));
  Asm.insn a Syscall;
  Asm.insn a Halt;
  Asm.assemble a

let show_with fault name =
  Printf.printf "=== %s ===\n%!" name;
  let cfg = { Darco.Config.default with inject_fault = fault } in
  let report = Darco.Debug.investigate ~cfg ~seed:42 (program ()) in
  Format.printf "%a@.@." Darco.Debug.pp_report report

let () =
  show_with Darco.Config.No_fault "healthy translator";
  show_with Darco.Config.Opt_drop_store
    "injected bug: CSE pass drops a superblock store";
  show_with Darco.Config.Sched_break_dep
    "injected bug: scheduler reorders memory without speculation protection"
