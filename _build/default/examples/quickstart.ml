(* Quickstart: assemble a small guest program, run it through the full
   co-designed pipeline (interpreter -> BB translation -> superblock
   optimization) with state validation against the authoritative x86
   component, and inspect the software-layer statistics.

     dune exec examples/quickstart.exe *)

open Darco_guest

(* A guest program: sum the integers 1..500, store the result, print it,
   and exit with its low byte. *)
let program () =
  let a = Asm.create ~base:0x1000 () in
  Asm.insn a (Mov (Reg EAX, Imm 0));
  Asm.insn a (Mov (Reg ECX, Imm 500));
  Asm.label a "loop";
  Asm.insn a (Alu (Add, Reg EAX, Reg ECX));
  Asm.insn a (Dec (Reg ECX));
  Asm.jcc a NE "loop";
  (* store the result and write it to fd 1 *)
  Asm.insn a (Mov (Mem { base = None; index = None; disp = 0x4000 }, Reg EAX));
  Asm.insn a (Mov (Reg EBX, Imm 1));
  Asm.insn a (Mov (Reg ECX, Imm 0x4000));
  Asm.insn a (Mov (Reg EDX, Imm 4));
  Asm.insn a (Mov (Reg EAX, Imm 4));
  Asm.insn a Syscall;
  (* exit(sum & 0xff) *)
  Asm.insn a (Mov (Reg EBX, Mem { base = None; index = None; disp = 0x4000 }));
  Asm.insn a (Alu (And, Reg EBX, Imm 0xFF));
  Asm.insn a (Mov (Reg EAX, Imm 1));
  Asm.insn a Syscall;
  Asm.insn a Halt;
  Asm.assemble a

let () =
  let ctl = Darco.Controller.create ~cfg:Darco.Config.quick ~seed:1 (program ()) in
  ctl.validate_at_checkpoints <- true;
  (match Darco.Controller.run ctl with
  | `Done -> print_endline "run completed; all state validations passed"
  | `Limit -> print_endline "instruction limit reached"
  | `Diverged d ->
    Printf.printf "DIVERGENCE at %d retired instructions:\n  %s\n" d.at_retired
      (String.concat "\n  " d.details));
  Printf.printf "guest exit code: %s\n"
    (match Darco.Controller.exit_code ctl with
    | Some c -> string_of_int c
    | None -> "-");
  let out = Darco.Controller.output ctl in
  Printf.printf "guest output bytes: %s (sum = %d; expected %d)\n"
    (String.concat " " (List.init (String.length out) (fun i -> string_of_int (Char.code out.[i]))))
    (Char.code out.[0] lor (Char.code out.[1] lsl 8) lor (Char.code out.[2] lsl 16))
    (500 * 501 / 2);
  Format.printf "%a@." Darco.Stats.pp_summary (Darco.Controller.stats ctl)
