open Darco
open Darco_sampling
module Stats = Darco_obs.Stats
module Pipeline = Darco_timing.Pipeline

(* Snapshot/restore must be invisible: a run interrupted at an arbitrary
   point, serialized, deserialized and resumed has to retire the same
   instruction stream and end in the same state as a run never interrupted. *)

let cfg = { Config.quick with slice_fuel = 2_000 }

let build name = (Darco_workloads.Registry.find name).build ~scale:1 ()

let expect_done what = function
  | `Done -> ()
  | `Limit -> Alcotest.failf "%s: hit instruction limit" what
  | `Diverged (d : Controller.divergence) ->
    Alcotest.failf "%s: diverged at %d:\n%s" what d.at_retired
      (String.concat "\n" d.details)

type final = {
  f_stats : Stats.t;
  f_ref_hash : string;
  f_co_hash : string;
  f_output : string;
  f_exit : int option;
}

let final_of (ctl : Controller.t) =
  {
    f_stats = Controller.stats ctl;
    f_ref_hash = Snapshot.memory_hash ctl.reference.mem;
    f_co_hash = Snapshot.memory_hash ctl.co.mem;
    f_output = Controller.output ctl;
    f_exit = Controller.exit_code ctl;
  }

let check_final what want got =
  Alcotest.(check bool) (what ^ ": final stats identical") true
    (Stats.equal want.f_stats got.f_stats);
  Alcotest.(check string) (what ^ ": guest memory hash") want.f_ref_hash got.f_ref_hash;
  Alcotest.(check string) (what ^ ": co-designed memory hash") want.f_co_hash
    got.f_co_hash;
  Alcotest.(check string) (what ^ ": program output") want.f_output got.f_output;
  Alcotest.(check (option int)) (what ^ ": exit code") want.f_exit got.f_exit

let roundtrip_workload name offsets () =
  let program = build name in
  let seed = 7 in
  let full = Controller.create ~cfg ~seed program in
  expect_done (name ^ " uninterrupted") (Controller.run full);
  let want = final_of full in
  List.iter
    (fun offset ->
      let part = Controller.create ~cfg ~seed program in
      (match Controller.run ~max_insns:offset part with
      | `Limit -> ()
      | `Done -> Alcotest.failf "%s: offset %d beyond program end" name offset
      | `Diverged _ -> Alcotest.failf "%s: diverged before offset %d" name offset);
      (* serialize through bytes, not just in-memory structures *)
      let bytes = Snapshot.to_string (Snapshot.capture part) in
      let snap = Snapshot.of_string bytes in
      Alcotest.(check bool) "full kind" true (Snapshot.kind snap = Snapshot.Full);
      let resumed = Snapshot.restore snap in
      expect_done
        (Printf.sprintf "%s resumed from offset %d" name offset)
        (Controller.run resumed);
      check_final (Printf.sprintf "%s @%d" name offset) want (final_of resumed))
    offsets

(* A warmed timing pipeline captured alongside the snapshot must continue
   cycle-identically too. *)
let test_timing_roundtrip () =
  let program = build "continuous" in
  let seed = 3 in
  let tcfg = Darco_timing.Tconfig.default in
  let run_full () =
    let bus = Darco_obs.Bus.create () in
    let pipe = Pipeline.create tcfg in
    Pipeline.attach pipe bus;
    let ctl = Controller.create ~cfg ~bus ~seed program in
    expect_done "timing uninterrupted" (Controller.run ctl);
    pipe
  in
  let want = run_full () in
  let bus = Darco_obs.Bus.create () in
  let pipe = Pipeline.create tcfg in
  Pipeline.attach pipe bus;
  let part = Controller.create ~cfg ~bus ~seed program in
  (match Controller.run ~max_insns:60_000 part with
  | `Limit -> ()
  | _ -> Alcotest.fail "expected limit");
  let bytes = Snapshot.to_string (Snapshot.capture ~pipeline:pipe part) in
  let snap = Snapshot.of_string bytes in
  let bus2 = Darco_obs.Bus.create () in
  let pipe2 =
    match Snapshot.restore_pipeline snap with
    | Some p -> p
    | None -> Alcotest.fail "snapshot lost its timing section"
  in
  Pipeline.attach pipe2 bus2;
  let resumed = Snapshot.restore ~bus:bus2 snap in
  expect_done "timing resumed" (Controller.run resumed);
  Alcotest.(check int) "cycles identical" (Pipeline.cycles want) (Pipeline.cycles pipe2);
  Alcotest.(check int) "host instructions identical" (Pipeline.instructions want)
    (Pipeline.instructions pipe2)

(* Functional snapshots: the x86 component alone, restored and run to halt,
   behaves exactly like an uninterrupted plain emulation. *)
let test_functional_reference () =
  let program = build "470.lbm" in
  let plain = Darco_guest.Interp_ref.boot ~seed:5 program in
  ignore (Darco_guest.Interp_ref.run_to_halt plain);
  let ir = Darco_guest.Interp_ref.boot ~seed:5 program in
  Darco_guest.Interp_ref.run_until ir 25_000;
  let snap = Snapshot.of_string (Snapshot.to_string (Snapshot.capture_reference ir)) in
  Alcotest.(check bool) "functional kind" true (Snapshot.kind snap = Snapshot.Functional);
  Alcotest.(check int) "retired recorded" 25_000 (Snapshot.retired snap);
  let restored = Snapshot.restore_reference snap in
  ignore (Darco_guest.Interp_ref.run_to_halt restored);
  Alcotest.(check string) "output" (Darco_guest.Interp_ref.output plain)
    (Darco_guest.Interp_ref.output restored);
  Alcotest.(check (option int)) "exit code" plain.exit_code restored.exit_code;
  Alcotest.(check int) "retired" plain.retired restored.retired;
  Alcotest.(check string) "memory"
    (Snapshot.memory_hash plain.mem)
    (Snapshot.memory_hash restored.mem)

(* The sampling driver's fast-forward path must be bit-identical to the
   O(offset) [create_at] it replaces. *)
let test_driver_matches_create_at () =
  let program = build "continuous" in
  let seed = 11 in
  let checkpoints =
    Driver.functional_checkpoints ~seed ~interval:20_000 ~horizon:150_000 program
  in
  Alcotest.(check bool) "several checkpoints" true (List.length checkpoints >= 5);
  List.iter
    (fun start ->
      let via_driver = Driver.controller_at ~cfg checkpoints ~start in
      let via_create = Controller.create_at ~cfg ~seed program ~start in
      expect_done "driver path" (Controller.run via_driver);
      expect_done "create_at path" (Controller.run via_create);
      Alcotest.(check bool)
        (Printf.sprintf "stats identical from start %d" start)
        true
        (Stats.equal (Controller.stats via_driver) (Controller.stats via_create)))
    [ 0; 35_000; 90_000 ]

(* Corruption must surface as a clean [Buf.Corrupt], never a crash or a
   silently wrong snapshot. *)
let test_corrupted_snapshot () =
  let program = build "continuous" in
  let part = Controller.create ~cfg ~seed:7 program in
  (match Controller.run ~max_insns:30_000 part with
  | `Limit -> ()
  | _ -> Alcotest.fail "expected limit");
  let good = Snapshot.to_string (Snapshot.capture part) in
  let expect_corrupt what s =
    match Snapshot.of_string s with
    | _ -> Alcotest.failf "%s: accepted corrupted snapshot" what
    | exception Buf.Corrupt _ -> ()
  in
  (* flip one byte in the middle of a section payload: CRC must catch it *)
  let flipped = Bytes.of_string good in
  let mid = String.length good / 2 in
  Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 0x40));
  expect_corrupt "bit flip" (Bytes.to_string flipped);
  (* truncations at every framing granularity *)
  expect_corrupt "truncated header" (String.sub good 0 3);
  expect_corrupt "truncated section" (String.sub good 0 (String.length good / 3));
  expect_corrupt "one byte short" (String.sub good 0 (String.length good - 1));
  (* bad magic / unsupported version *)
  expect_corrupt "bad magic" ("XSNP" ^ String.sub good 4 (String.length good - 4));
  let future = Bytes.of_string good in
  Bytes.set future 4 '\xff';
  expect_corrupt "future version" (Bytes.to_string future);
  (* trailing garbage *)
  expect_corrupt "trailing bytes" (good ^ "extra");
  (* and the good bytes still restore fine afterwards *)
  let resumed = Snapshot.restore (Snapshot.of_string good) in
  expect_done "good bytes resume" (Controller.run resumed)

(* Dummy units for exercising the sweep machinery with injected behaviour:
   the closure passed to [Backend.of_exec] keys off the label, so no real
   simulation happens. *)
let dummy_works labels =
  List.map
    (fun label -> { Work.label; ckpt = Work.Inline ""; offset = 0; window = 1; warmup = 0 })
    labels

let crashy_exec (w : Work.t) =
  let module J = Darco_obs.Jsonx in
  match int_of_string w.label with
  | 1 -> failwith "boom"
  | 2 ->
    (* die without the courtesy of an exception *)
    Unix.kill (Unix.getpid ()) Sys.sigkill;
    assert false
  | i -> J.Obj [ ("v", J.Int i) ]

(* A crashing worker loses only its own sample.  Runs through the
   backend-agnostic [Sweep.run] front door with an instrumented executor
   ([Backend.of_exec]), which shares its fork pool with [Backend.local] —
   so the containment property is tested for the real path. *)
let test_sweep_contains_crashes () =
  let module J = Darco_obs.Jsonx in
  let results =
    Sweep.run
      (Sweep.Backend.of_exec ~jobs:2 ~name:"crashy" crashy_exec)
      (dummy_works [ "0"; "1"; "2"; "3" ])
  in
  Alcotest.(check int) "all samples reported" 4 (List.length results);
  let nth n = (List.nth results n).Sweep.outcome in
  (match nth 0 with
  | Sweep.Ok json ->
    Alcotest.(check (option int)) "payload survives" (Some 0)
      (Option.bind (J.member "v" json) J.to_int)
  | Sweep.Failed r -> Alcotest.failf "sample 0 failed: %s" r);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  (match nth 1 with
  | Sweep.Failed reason ->
    Alcotest.(check bool) "exception reason captured" true (contains reason "boom")
  | Sweep.Ok _ -> Alcotest.fail "exception not contained");
  (match nth 2 with
  | Sweep.Failed reason ->
    Alcotest.(check bool) "signal death reported" true
      (String.length reason > 0)
  | Sweep.Ok _ -> Alcotest.fail "signal death not contained");
  match nth 3 with
  | Sweep.Ok _ -> ()
  | Sweep.Failed r -> Alcotest.failf "sample 3 failed: %s" r

(* --- the content-addressed checkpoint store --- *)

let test_store_basics () =
  (* the address function is a contract (workers on other machines hash
     the same bytes): pin a known value *)
  Alcotest.(check string) "digest pinned"
    "5d41402abc4b2a76b9719d911017c592" (Store.digest "hello");
  Alcotest.(check bool) "valid digest shape" true
    (Store.is_digest (Store.digest ""));
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "rejects %S" s) false (Store.is_digest s))
    [ ""; "xyz"; String.make 31 'a'; String.make 33 'a'; String.make 32 'A' ];
  let store = Store.create () in
  Alcotest.(check int) "empty" 0 (Store.count store);
  let d1 = Store.add store "first checkpoint" in
  let d1' = Store.add store "first checkpoint" in
  Alcotest.(check string) "idempotent add" d1 d1';
  Alcotest.(check int) "one distinct entry" 1 (Store.count store);
  let d2 = Store.add store "second checkpoint" in
  Alcotest.(check bool) "distinct content, distinct digest" true (d1 <> d2);
  Alcotest.(check (option string)) "find returns the bytes"
    (Some "first checkpoint") (Store.find store d1);
  Alcotest.(check (option string)) "unknown digest misses" None
    (Store.find store (Store.digest "never added"));
  Alcotest.(check bool) "mem" true (Store.mem store d2)

let test_store_disk_spill () =
  let dir = Filename.temp_file "darco_store" "" in
  Sys.remove dir;
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir
    end
  in
  Fun.protect ~finally:cleanup (fun () ->
      let store = Store.create ~dir () in
      let d = Store.add store "spilled checkpoint" in
      (* a second store over the same directory sees the entry cold *)
      let fresh = Store.create ~dir () in
      Alcotest.(check int) "fresh store starts empty in memory" 0 (Store.count fresh);
      Alcotest.(check (option string)) "disk entry found"
        (Some "spilled checkpoint") (Store.find fresh d);
      Alcotest.(check int) "found entry now resident" 1 (Store.count fresh);
      (* tampered disk bytes are refused, never returned *)
      let d2 = Store.digest "phantom content" in
      let path = Filename.concat dir (d2 ^ ".dsnp") in
      let oc = open_out_bin path in
      output_string oc "not the phantom content";
      close_out oc;
      let cold = Store.create ~dir () in
      match Store.find cold d2 with
      | _ -> Alcotest.fail "accepted a tampered cache entry"
      | exception Buf.Corrupt _ -> ())

(* --- the spill directory's LRU byte budget --- *)

let with_store_dir f =
  let dir = Filename.temp_file "darco_store" "" in
  Sys.remove dir;
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Unix.rmdir dir
    end
  in
  Fun.protect ~finally:cleanup (fun () -> f dir)

let evict_bus () =
  let evicted = ref [] in
  let bus = Darco_obs.Bus.create () in
  Darco_obs.Bus.attach bus ~name:"evictions" (fun ~at:_ ev ->
      match ev with
      | Darco_obs.Event.Store_evict { digest; bytes } ->
        evicted := (digest, bytes) :: !evicted
      | _ -> ());
  (bus, evicted)

let test_store_lru_eviction () =
  with_store_dir @@ fun dir ->
  let bus, evicted = evict_bus () in
  let store = Store.create ~bus ~dir ~max_bytes:50 () in
  let c1 = String.make 20 'a' and c2 = String.make 20 'b' in
  let c3 = String.make 20 'c' in
  let d1 = Store.add store c1 in
  let d2 = Store.add store c2 in
  Alcotest.(check int) "within budget, nothing evicted" 40
    (Store.spilled_bytes store);
  Alcotest.(check (list (pair string int))) "no evictions yet" [] !evicted;
  (* touch d1 so d2 is the least recently used when the budget bursts *)
  ignore (Store.find store d1);
  let d3 = Store.add store c3 in
  Alcotest.(check int) "evicted back under budget" 40
    (Store.spilled_bytes store);
  Alcotest.(check (list (pair string int))) "eviction on the bus"
    [ (d2, 20) ] !evicted;
  (* the evicted digest is gone warm and cold — a plain miss, not an error *)
  Alcotest.(check (option string)) "warm read of evicted digest misses" None
    (Store.find store d2);
  let fresh = Store.create ~dir () in
  Alcotest.(check (option string)) "cold read of evicted digest misses" None
    (Store.find fresh d2);
  Alcotest.(check (option string)) "recently used entry survived" (Some c1)
    (Store.find fresh d1);
  Alcotest.(check (option string)) "just-added entry never the victim"
    (Some c3) (Store.find fresh d3)

let test_store_pin_blocks_eviction () =
  with_store_dir @@ fun dir ->
  let bus, evicted = evict_bus () in
  let store = Store.create ~bus ~dir ~max_bytes:50 () in
  let c1 = String.make 20 'a' and c2 = String.make 20 'b' in
  let c3 = String.make 20 'c' and c4 = String.make 20 'd' in
  let d1 = Store.add store c1 in
  let d2 = Store.add store c2 in
  (* both in flight: the add must run the store over budget rather than
     drop a pinned checkpoint under a live sweep *)
  Store.pin store d1;
  Store.pin store d2;
  let d3 = Store.add store c3 in
  Alcotest.(check int) "over budget with only pinned victims" 60
    (Store.spilled_bytes store);
  Alcotest.(check (list (pair string int))) "no eviction while pinned" []
    !evicted;
  Alcotest.(check (option string)) "pinned entry intact" (Some c2)
    (Store.find store d2);
  (* the sweep settles: releasing the pin makes the entry evictable again *)
  Store.unpin store d1;
  let d4 = Store.add store c4 in
  Alcotest.(check bool) "budget enforced once unpinned" true
    (Store.spilled_bytes store <= 50);
  Alcotest.(check (option string)) "released entry was evicted" None
    (Store.find store d1);
  Alcotest.(check (option string)) "still-pinned entry survived" (Some c2)
    (Store.find store d2);
  Alcotest.(check bool) "evictions observed" true
    (List.mem_assoc d1 !evicted);
  (* pinning ahead of the add sticks: the entry is protected from the
     moment it lands *)
  let c5 = String.make 40 'e' in
  Store.pin store (Store.digest c5);
  let d5 = Store.add store c5 in
  Alcotest.(check (option string)) "pre-pinned entry immune" (Some c5)
    (Store.find store d5);
  Alcotest.(check (option string)) "unpinned neighbour paid for it" None
    (Store.find store d4);
  ignore d3

let test_manifest () =
  let program = build "continuous" in
  let part = Controller.create ~cfg ~seed:7 program in
  (match Controller.run ~max_insns:10_000 part with
  | `Limit -> ()
  | _ -> Alcotest.fail "expected limit");
  let snap = Snapshot.capture part in
  let m = Snapshot.manifest snap in
  let module J = Darco_obs.Jsonx in
  let str_field name = Option.bind (J.member name m) J.to_str in
  let int_field name = Option.bind (J.member name m) J.to_int in
  Alcotest.(check (option string)) "kind" (Some "full") (str_field "kind");
  Alcotest.(check (option int)) "version" (Some Snapshot.version) (int_field "version");
  match J.member "sections" m with
  | Some (J.List sections) ->
    Alcotest.(check bool) "at least guest+code sections" true (List.length sections >= 2)
  | _ -> Alcotest.fail "sections not a list"

(* Golden corpus: version-1 snapshot bytes committed under fixtures/ must
   keep decoding in every future build — the on-disk format is a contract,
   not an implementation detail.  DESIGN.md ("Snapshot compatibility
   policy") spells out the guarantee these fixtures enforce; regenerate
   them only alongside a version bump plus a new decoder arm. *)
let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_golden_corpus () =
  let module J = Darco_obs.Jsonx in
  let decode name = Snapshot.of_string (read_file (Filename.concat "fixtures" name)) in
  let fn = decode "mcf_40k_functional_v1.dsnp" in
  Alcotest.(check string) "functional manifest stable"
    {|{"version":1,"kind":"functional","retired":40000,"sections":[{"tag":"GUST","bytes":16674,"crc32":3925566016}]}|}
    (J.to_string (Snapshot.manifest fn));
  let full = decode "mcf_40k_full_v1.dsnp" in
  Alcotest.(check string) "full manifest stable"
    {|{"version":1,"kind":"full","retired":372571,"sections":[{"tag":"GUST","bytes":16674,"crc32":863927439},{"tag":"CODE","bytes":55178,"crc32":1244300970}]}|}
    (J.to_string (Snapshot.manifest full));
  (* decoded state must still be runnable, not merely parseable *)
  let ctl = Snapshot.restore full in
  expect_done "full fixture resumes" (Controller.run ctl);
  Alcotest.(check (option int)) "resumed exit code" (Some 1)
    (Controller.exit_code ctl)

(* Work-frame golden fixtures: both DWRK versions committed as pinned
   bytes.  Version 1 (inline snapshot) is the frozen original format —
   it must decode, re-encode bit-identically, and still {e execute}; the
   current writer must keep emitting it for inline units.  Version 2
   (digest-addressed) is pinned the same way against future drift. *)
let test_golden_work_v1 () =
  let module J = Darco_obs.Jsonx in
  let bytes = read_file (Filename.concat "fixtures" "mcf_40k_work_v1.dwrk") in
  let w = Work.of_string bytes in
  Alcotest.(check string) "label" "429.mcf@41000" w.Work.label;
  Alcotest.(check int) "offset" 41_000 w.Work.offset;
  Alcotest.(check int) "window" 2_000 w.Work.window;
  Alcotest.(check int) "warmup" 1_000 w.Work.warmup;
  (match w.Work.ckpt with
  | Work.Inline snap ->
    Alcotest.(check string) "inline snapshot is the v1 snapshot fixture"
      (read_file (Filename.concat "fixtures" "mcf_40k_functional_v1.dsnp"))
      snap
  | Work.Stored _ -> Alcotest.fail "v1 frame decoded as digest unit");
  Alcotest.(check (option string)) "no digest" None (Work.digest w);
  (* the writer still emits version-1 bytes for inline units *)
  Alcotest.(check string) "re-encodes bit-identically" bytes (Work.to_string w);
  (* and the decoded unit still runs end to end *)
  match Work.exec w with
  | json ->
    Alcotest.(check bool) "result has an ipc field" true
      (match J.member "ipc" json with Some (J.Float _) -> true | _ -> false)
  | exception e ->
    Alcotest.failf "v1 work fixture no longer executes: %s" (Printexc.to_string e)

let test_golden_work_v2 () =
  let bytes = read_file (Filename.concat "fixtures" "mcf_40k_work_v2.dwrk") in
  let w = Work.of_string bytes in
  Alcotest.(check string) "label" "429.mcf@41000" w.Work.label;
  Alcotest.(check int) "offset" 41_000 w.Work.offset;
  Alcotest.(check int) "window" 2_000 w.Work.window;
  Alcotest.(check int) "warmup" 1_000 w.Work.warmup;
  let snap_bytes =
    read_file (Filename.concat "fixtures" "mcf_40k_functional_v1.dsnp")
  in
  Alcotest.(check (option string)) "digest addresses the snapshot fixture"
    (Some (Store.digest snap_bytes))
    (Work.digest w);
  Alcotest.(check string) "re-encodes bit-identically" bytes (Work.to_string w);
  (* resolving through a store executes identically to the inline form *)
  let store = Store.create () in
  ignore (Store.add store snap_bytes);
  let inline = Work.of_string (read_file (Filename.concat "fixtures" "mcf_40k_work_v1.dwrk")) in
  Alcotest.(check string) "digest unit result identical to inline unit"
    (Darco_obs.Jsonx.to_string (Work.exec inline))
    (Darco_obs.Jsonx.to_string (Work.exec ~store w))

(* --- the multicore runtime ------------------------------------------------ *)

(* Everything below spawns domains.  The OCaml 5 runtime forbids
   [Unix.fork] once any domain has ever been created in the process, so
   these suites are registered LAST: every fork-based test above (the
   sweep pool tests) has finished before the first domain exists. *)

let render_result (r : Sweep.result) =
  r.Sweep.label ^ " => "
  ^ (match r.Sweep.outcome with
    | Sweep.Ok j -> Darco_obs.Jsonx.to_string j
    | Sweep.Failed e -> "FAILED " ^ e)

(* The acceptance contract of the domains backend: a real sweep renders
   byte-identically whichever pool ran it.  Fork runs first — after the
   domains sweep this process can never fork again. *)
let test_domains_identical_to_fork () =
  let program = build "462.libquantum" in
  let store = Store.create () in
  let window = 1_500 and warmup = 500 in
  let offsets = [ 1_000; 4_000; 7_000; 10_000 ] in
  let checkpoints =
    Driver.functional_checkpoints ~seed:11 ~interval:3_000 ~horizon:12_000
      program
  in
  let works =
    List.map
      (fun offset ->
        Work.of_window_stored ~store ~checkpoints
          ~label:(Printf.sprintf "u@%d" offset)
          ~offset ~window ~warmup)
      offsets
  in
  let via_fork = Sweep.run (Sweep.Backend.local ~store ~jobs:3 ()) works in
  let via_domains = Sweep.run (Sweep.Backend.domains ~store ~jobs:3 ()) works in
  Alcotest.(check (list string))
    "fork and domains render identically"
    (List.map render_result via_fork)
    (List.map render_result via_domains)

(* A unit raising on a worker domain is contained as its own [Failed]
   outcome — and rendered exactly as the fork pool renders the same
   failure (a v2 unit whose digest is in nobody's store). *)
let test_domains_contains_failures () =
  let phantom = Store.digest "never stored anywhere" in
  let works =
    [
      {
        Work.label = "orphan";
        ckpt = Work.Stored phantom;
        offset = 0;
        window = 1;
        warmup = 0;
      };
    ]
  in
  let empty () = Store.create () in
  let via_domains =
    Sweep.run (Sweep.Backend.domains ~store:(empty ()) ~jobs:2 ()) works
  in
  match (List.hd via_domains).Sweep.outcome with
  | Sweep.Ok _ -> Alcotest.fail "missing digest produced a result"
  | Sweep.Failed reason ->
    Alcotest.(check bool) "reason mentions the failure" true
      (String.length reason > String.length "worker failed: ")

(* Many domains hammering one store: adds (duplicate and distinct),
   immediate readbacks and the spill directory must all stay coherent
   under concurrency. *)
let test_store_concurrent () =
  let dir = Filename.temp_file "darco_store_mt" "" in
  Sys.remove dir;
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir
    end
  in
  Fun.protect ~finally:cleanup (fun () ->
      let store = Store.create ~dir ~tier:Store.Shared () in
      let ndom = 4 and per = 25 and shared_contents = 5 in
      let doms =
        List.init ndom (fun d ->
            Domain.spawn (fun () ->
                List.init per (fun i ->
                    (* every domain re-adds the same shared blobs AND its
                       own private ones, interleaved *)
                    let shared = Printf.sprintf "shared-%d" (i mod shared_contents) in
                    let own = Printf.sprintf "own-%d-%d" d i in
                    let ds = Store.add store shared in
                    let dn = Store.add store own in
                    let got_s = Store.find store ds = Some shared in
                    let got_n = Store.find store dn = Some own in
                    (ds, dn, got_s && got_n))))
      in
      let outcomes = List.concat_map Domain.join doms in
      List.iter
        (fun (_, _, ok) ->
          Alcotest.(check bool) "every readback saw its own bytes" true ok)
        outcomes;
      let distinct = shared_contents + (ndom * per) in
      Alcotest.(check int) "adds deduplicated across domains" distinct
        (Store.count store);
      (* every digest resolves after the dust settles *)
      List.iter
        (fun (ds, dn, _) ->
          Alcotest.(check bool) "shared digest resolves" true
            (Store.find store ds <> None);
          Alcotest.(check bool) "own digest resolves" true
            (Store.find store dn <> None))
        outcomes;
      (* a fresh Shared-tier store over the same directory cold-reads the
         spilled entries (mmap path) and re-verifies them *)
      let fresh = Store.create ~dir ~tier:Store.Shared () in
      Alcotest.(check int) "fresh store starts empty" 0 (Store.count fresh);
      let d0 = Store.digest "shared-0" in
      Alcotest.(check (option string)) "cold mmap read"
        (Some "shared-0") (Store.find fresh d0);
      (* concurrent cold reads of one spilled entry from several domains *)
      let cold = Store.create ~dir ~tier:Store.Shared () in
      let readers =
        List.init ndom (fun _ ->
            Domain.spawn (fun () -> Store.find cold d0 = Some "shared-0"))
      in
      List.iter
        (fun d ->
          Alcotest.(check bool) "concurrent cold read" true (Domain.join d))
        readers;
      (* tampered spill bytes are refused on the mmap path too *)
      let dp = Store.digest "phantom" in
      let oc = open_out_bin (Filename.concat dir (dp ^ ".dsnp")) in
      output_string oc "not the phantom";
      close_out oc;
      match Store.find (Store.create ~dir ~tier:Store.Shared ()) dp with
      | _ -> Alcotest.fail "accepted a tampered cache entry"
      | exception Buf.Corrupt _ -> ())

let () =
  Alcotest.run "sampling"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "462.libquantum" `Quick
            (roundtrip_workload "462.libquantum" [ 2_000; 60_000; 250_000 ]);
          Alcotest.test_case "470.lbm" `Quick
            (roundtrip_workload "470.lbm" [ 5_000; 120_000 ]);
          Alcotest.test_case "continuous (physics)" `Quick
            (roundtrip_workload "continuous" [ 1_000; 40_000; 150_000 ]);
          Alcotest.test_case "timing pipeline" `Quick test_timing_roundtrip;
          Alcotest.test_case "functional reference" `Quick test_functional_reference;
        ] );
      ( "driver",
        [ Alcotest.test_case "matches create_at" `Quick test_driver_matches_create_at ]
      );
      ( "sweep",
        [
          Alcotest.test_case "crash containment" `Quick test_sweep_contains_crashes;
        ] );
      ( "store",
        [
          Alcotest.test_case "content addressing" `Quick test_store_basics;
          Alcotest.test_case "disk spill and verification" `Quick
            test_store_disk_spill;
          Alcotest.test_case "LRU byte budget" `Quick test_store_lru_eviction;
          Alcotest.test_case "pins block eviction" `Quick
            test_store_pin_blocks_eviction;
        ] );
      ( "format",
        [
          Alcotest.test_case "corruption detected" `Quick test_corrupted_snapshot;
          Alcotest.test_case "manifest" `Quick test_manifest;
          Alcotest.test_case "golden corpus decodes" `Quick test_golden_corpus;
          Alcotest.test_case "golden work frame v1" `Quick test_golden_work_v1;
          Alcotest.test_case "golden work frame v2" `Quick test_golden_work_v2;
        ] );
      (* keep last: these spawn domains, which forbids fork for the rest
         of the process (the sweep suite above forks) *)
      ( "multicore",
        [
          Alcotest.test_case "domains backend identical to fork" `Quick
            test_domains_identical_to_fork;
          Alcotest.test_case "domains backend contains failures" `Quick
            test_domains_contains_failures;
          Alcotest.test_case "store under concurrent domains" `Quick
            test_store_concurrent;
        ] );
    ]
