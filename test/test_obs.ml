open Darco
open Darco_obs

(* The observability layer: the event bus must be invisible when nothing
   listens, and when the aggregator listens it must rebuild the exact
   Stats.t the core maintains directly. *)

let workloads = [ "401.bzip2"; "429.mcf"; "458.sjeng" ]
let max_insns = 120_000

let run_with_bus ?(attach = fun _ -> ()) name =
  let e = Darco_workloads.Registry.find name in
  let bus = Bus.create () in
  attach bus;
  let ctl = Controller.create ~bus ~seed:42 (e.build ()) in
  ignore (Controller.run ~max_insns ctl);
  (ctl, bus)

(* --- Jsonx: the hand-rolled JSON printer/parser ------------------------- *)

let test_jsonx_roundtrip () =
  let samples =
    [
      Jsonx.Null;
      Jsonx.Bool true;
      Jsonx.Int (-42);
      Jsonx.Float 3.5;
      Jsonx.String "with \"quotes\", \\ and \n control";
      Jsonx.List [ Jsonx.Int 1; Jsonx.Null; Jsonx.String "x" ];
      Jsonx.Obj
        [
          ("at", Jsonx.Int 17);
          ("ev", Jsonx.String "slice_end");
          ("nested", Jsonx.Obj [ ("empty", Jsonx.List []) ]);
        ];
    ]
  in
  List.iter
    (fun j ->
      let s = Jsonx.to_string j in
      Alcotest.(check bool) ("roundtrip " ^ s) true (Jsonx.parse s = j))
    samples

(* --- Jsonx: property-based round-trip ----------------------------------- *)

(* Two deliberate asymmetries in the printer/parser pair:
   - an integer-valued float >= 1e15 prints via %.17g without a decimal
     point, so it parses back as [Int];
   - the parser folds numerically-equal floats (e.g. -0.0 vs 0.0).
   Semantic equality accepts exactly those coercions and nothing else. *)
let rec jsonx_sem_eq a b =
  match (a, b) with
  | Jsonx.Float x, Jsonx.Float y -> x = y
  | Jsonx.Int i, Jsonx.Float f | Jsonx.Float f, Jsonx.Int i ->
    Float.is_integer f && Float.abs f < 4e18 && int_of_float f = i
  | Jsonx.List xs, Jsonx.List ys ->
    List.length xs = List.length ys && List.for_all2 jsonx_sem_eq xs ys
  | Jsonx.Obj xs, Jsonx.Obj ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && jsonx_sem_eq v1 v2)
         xs ys
  | _ -> a = b

let gen_jsonx =
  let open QCheck.Gen in
  (* full ASCII, including the control characters that print as \u escapes
     and the quote/backslash/newline family with dedicated escapes *)
  let ascii_string = string_size ~gen:(map Char.chr (int_range 0 127)) (int_range 0 12) in
  let edge_floats =
    [
      0.0; -0.0; 1.0; -1.0; 0.1; -0.5; Float.pi; 1e-300; 1.5e300; max_float;
      min_float; 4.94e-324 (* subnormal *); 1e15 (* %.1f/%.17g boundary *);
      1e16; 9007199254740992.0 (* 2^53 *); 0.30000000000000004;
    ]
  in
  let finite f = if Float.is_finite f then f else 0.0 in
  let leaf =
    oneof
      [
        return Jsonx.Null;
        map (fun b -> Jsonx.Bool b) bool;
        map (fun i -> Jsonx.Int i) int;
        map (fun f -> Jsonx.Float f) (oneof [ oneofl edge_floats; map finite float ]);
        map (fun s -> Jsonx.String s) ascii_string;
      ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then leaf
         else
           frequency
             [
               (2, leaf);
               (1, map (fun l -> Jsonx.List l) (list_size (int_range 0 4) (self (n / 2))));
               ( 1,
                 map
                   (fun kvs -> Jsonx.Obj kvs)
                   (list_size (int_range 0 4) (pair ascii_string (self (n / 2)))) );
             ])

let arb_jsonx = QCheck.make ~print:Jsonx.to_string gen_jsonx

let prop_jsonx_roundtrip =
  QCheck.Test.make ~name:"parse (to_string j) = j up to Int/Float coercion"
    ~count:500 arb_jsonx (fun j -> jsonx_sem_eq (Jsonx.parse (Jsonx.to_string j)) j)

(* Strings must round-trip byte-exactly, whatever needed escaping. *)
let prop_jsonx_string_exact =
  QCheck.Test.make ~name:"escaped strings round-trip byte-exactly" ~count:500
    QCheck.(string_gen_of_size Gen.(int_range 0 64) Gen.(map Char.chr (int_range 0 127)))
    (fun s -> Jsonx.parse (Jsonx.to_string (Jsonx.String s)) = Jsonx.String s)

(* Printing is a fixpoint after one parse: print . parse . print = print. *)
let prop_jsonx_print_stable =
  QCheck.Test.make ~name:"to_string stable across a parse round" ~count:500
    arb_jsonx (fun j ->
      let s = Jsonx.to_string j in
      String.equal (Jsonx.to_string (Jsonx.parse s)) s)

let test_jsonx_parse_errors () =
  List.iter
    (fun s ->
      match Jsonx.parse s with
      | exception Jsonx.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected parse error on %S" s)
    [ ""; "{"; "[1,]"; "\"unterminated"; "truely" ]

(* --- aggregator exactness ----------------------------------------------- *)

let render stats = Format.asprintf "%a" Stats.pp_summary stats

let test_aggregator_matches name () =
  let agg = ref (Stats.create ()) in
  let ctl, _bus = run_with_bus ~attach:(fun bus -> agg := Agg.attach bus) name in
  let direct = Controller.stats ctl in
  if not (Stats.equal direct !agg) then
    Alcotest.failf "aggregator drift on %s:\ndirect:\n%s\naggregated:\n%s" name
      (render direct) (render !agg);
  Alcotest.(check string) "pp_summary identical" (render direct) (render !agg)

(* --- trace sink: every JSONL line parses back --------------------------- *)

let get_int key j =
  match Option.bind (Jsonx.member key j) Jsonx.to_int with
  | Some n -> n
  | None -> Alcotest.failf "missing int field %S" key

let get_str key j =
  match Option.bind (Jsonx.member key j) Jsonx.to_str with
  | Some s -> s
  | None -> Alcotest.failf "missing string field %S" key

let test_trace_jsonl () =
  let path = Filename.temp_file "darco_trace" ".jsonl" in
  let oc = ref stdout in
  let ctl, _bus =
    run_with_bus ~attach:(fun bus -> oc := Trace.attach_file bus path) "429.mcf"
  in
  close_out !oc;
  let ic = open_in path in
  let lines = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lines;
       let j = Jsonx.parse line in
       let at = get_int "at" j in
       let ev = get_str "ev" j in
       if at < 0 || String.length ev = 0 then
         Alcotest.failf "bad trace record: %s" line
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "trace non-empty" true (!lines > 0);
  Alcotest.(check bool) "run retired instructions" true
    (Stats.guest_total (Controller.stats ctl) > 0)

(* --- silent bus: no sinks must not change execution --------------------- *)

let test_no_sink_identical () =
  let quiet, qbus = run_with_bus "401.bzip2" in
  Alcotest.(check bool) "bus stays inactive" false (Bus.active qbus);
  let observed, _ =
    run_with_bus ~attach:(fun bus -> ignore (Agg.attach bus)) "401.bzip2"
  in
  let sq = Controller.stats quiet and so = Controller.stats observed in
  Alcotest.(check int) "same guest_total" (Stats.guest_total sq)
    (Stats.guest_total so);
  Alcotest.(check bool) "identical counters" true (Stats.equal sq so)

(* --- metrics snapshot parses back with consistent totals ---------------- *)

let test_metrics_json () =
  let ctl, _ = run_with_bus "458.sjeng" in
  let s = Controller.stats ctl in
  let j = Jsonx.parse (Metrics.to_string s) in
  let section name =
    match Jsonx.member name j with
    | Some sub -> sub
    | None -> Alcotest.failf "missing section %S" name
  in
  Alcotest.(check int) "guest total" (Stats.guest_total s)
    (get_int "total" (section "guest"));
  Alcotest.(check int) "overhead total" (Stats.total_overhead s)
    (get_int "total" (section "overhead"))

(* --- the event schema, exhaustively ------------------------------------- *)

(* Total match, no wildcard: adding a constructor fails compilation here
   until a sample below covers it, so the JSONL/trace schema cannot grow
   an untested case. *)
let constructor_index : Event.t -> int = function
  | Event.Init _ -> 0
  | Event.Clock_sync _ -> 1
  | Event.Slice_start -> 2
  | Event.Slice_end _ -> 3
  | Event.Interp_block _ -> 4
  | Event.Interp_step _ -> 5
  | Event.Interp_exec _ -> 6
  | Event.Bb_translated _ -> 7
  | Event.Sb_translated _ -> 8
  | Event.Region_exec _ -> 9
  | Event.Chain_made _ -> 10
  | Event.Ibtc_miss _ -> 11
  | Event.Ibtc_fill _ -> 12
  | Event.Rollback _ -> 13
  | Event.Deopt_rebuild _ -> 14
  | Event.Cache_flush _ -> 15
  | Event.Page_install _ -> 16
  | Event.Syscall _ -> 17
  | Event.Validation _ -> 18
  | Event.Divergence _ -> 19
  | Event.Halt -> 20
  | Event.Worker_up _ -> 21
  | Event.Worker_lost _ -> 22
  | Event.Dispatch_sent _ -> 23
  | Event.Dispatch_done _ -> 24
  | Event.Dispatch_retry _ -> 25
  | Event.Dispatch_fallback _ -> 26
  | Event.Ckpt_push _ -> 27
  | Event.Ckpt_hit _ -> 28
  | Event.Steal _ -> 29
  | Event.Dispatch_inflight _ -> 30
  | Event.Span_begin _ -> 31
  | Event.Span_end _ -> 32
  | Event.Submit _ -> 33
  | Event.Admit _ -> 34
  | Event.Artifact_hit _ -> 35
  | Event.Artifact_store _ -> 36
  | Event.Store_evict _ -> 37
  | Event.Plan_round _ -> 38
  | Event.Plan_predict _ -> 39
  | Event.Plan_stop _ -> 40
  | Event.Straggler _ -> 41

let n_constructors = 42

(* One sample per constructor: (event, stable name, exact JSON at at=5).
   These strings are the on-disk trace format — changing one is a schema
   break and must be deliberate. *)
let event_samples =
  [
    (Event.Init { cost = 3 }, "init", {|{"at":5,"ev":"init","cost":3}|});
    ( Event.Clock_sync { retired = 7 },
      "clock_sync",
      {|{"at":5,"ev":"clock_sync","retired":7}|} );
    (Event.Slice_start, "slice_start", {|{"at":5,"ev":"slice_start"}|});
    ( Event.Slice_end
        {
          stop = Event.St_syscall;
          overheads = [ (Stats.Ov_interp, 2); (Stats.Ov_other, 1) ];
        },
      "slice_end",
      {|{"at":5,"ev":"slice_end","stop":"syscall","overheads":{"interpreter":2,"other":1}}|}
    );
    ( Event.Interp_block { pc = 16; insns = 4; cost = 9 },
      "interp_block",
      {|{"at":5,"ev":"interp_block","pc":16,"insns":4,"cost":9}|} );
    ( Event.Interp_step { pc = 16; cost = 2 },
      "interp_step",
      {|{"at":5,"ev":"interp_step","pc":16,"cost":2}|} );
    ( Event.Interp_exec { pc = 16; cost = 2 },
      "interp_exec",
      {|{"at":5,"ev":"interp_exec","pc":16,"cost":2}|} );
    ( Event.Bb_translated { pc = 16; guest_len = 3; host_len = 6; cost = 40 },
      "bb_translated",
      {|{"at":5,"ev":"bb_translated","pc":16,"guest_len":3,"host_len":6,"cost":40}|}
    );
    ( Event.Sb_translated
        { pc = 16; guest_len = 3; host_len = 6; cost = 40; unrolled = true },
      "sb_translated",
      {|{"at":5,"ev":"sb_translated","pc":16,"guest_len":3,"host_len":6,"cost":40,"unrolled":true}|}
    );
    ( Event.Region_exec
        {
          pc = 16;
          guest_bb = 1;
          guest_sb = 2;
          host_bb = 3;
          host_sb = 4;
          chains_followed = 5;
          wasted_host = 6;
        },
      "region_exec",
      {|{"at":5,"ev":"region_exec","pc":16,"guest_bb":1,"guest_sb":2,"host_bb":3,"host_sb":4,"chains_followed":5,"wasted_host":6}|}
    );
    ( Event.Chain_made { pc = 16 },
      "chain_made",
      {|{"at":5,"ev":"chain_made","pc":16}|} );
    (Event.Ibtc_miss { pc = 16 }, "ibtc_miss", {|{"at":5,"ev":"ibtc_miss","pc":16}|});
    (Event.Ibtc_fill { pc = 16 }, "ibtc_fill", {|{"at":5,"ev":"ibtc_fill","pc":16}|});
    ( Event.Rollback { kind = Event.Rb_assert; pc = 16 },
      "rollback",
      {|{"at":5,"ev":"rollback","kind":"assert","pc":16}|} );
    ( Event.Deopt_rebuild { kind = Event.De_nomem; pc = 16 },
      "deopt_rebuild",
      {|{"at":5,"ev":"deopt_rebuild","kind":"nomem","pc":16}|} );
    ( Event.Cache_flush { regions = 2; host_insns = 90 },
      "cache_flush",
      {|{"at":5,"ev":"cache_flush","regions":2,"host_insns":90}|} );
    ( Event.Page_install { index = 3 },
      "page_install",
      {|{"at":5,"ev":"page_install","page":3}|} );
    ( Event.Syscall { eip = 16; cost = 75 },
      "syscall",
      {|{"at":5,"ev":"syscall","eip":16,"cost":75}|} );
    ( Event.Validation { kind = Event.V_halt },
      "validation",
      {|{"at":5,"ev":"validation","kind":"halt"}|} );
    ( Event.Divergence { details = [ "a"; "b" ] },
      "divergence",
      {|{"at":5,"ev":"divergence","details":["a","b"]}|} );
    (Event.Halt, "halt", {|{"at":5,"ev":"halt"}|});
    ( Event.Worker_up { worker = "w:1" },
      "worker_up",
      {|{"at":5,"ev":"worker_up","worker":"w:1"}|} );
    ( Event.Worker_lost { worker = "w:1"; reason = "gone" },
      "worker_lost",
      {|{"at":5,"ev":"worker_lost","worker":"w:1","reason":"gone"}|} );
    ( Event.Dispatch_sent
        { unit_label = "u"; worker = "w:1"; attempt = 1; bytes = 128 },
      "dispatch_sent",
      {|{"at":5,"ev":"dispatch_sent","unit":"u","worker":"w:1","attempt":1,"bytes":128}|}
    );
    ( Event.Dispatch_done { unit_label = "u"; worker = "w:1"; ok = true },
      "dispatch_done",
      {|{"at":5,"ev":"dispatch_done","unit":"u","worker":"w:1","ok":true}|} );
    ( Event.Dispatch_retry { unit_label = "u"; attempt = 2; delay = 0.5 },
      "dispatch_retry",
      {|{"at":5,"ev":"dispatch_retry","unit":"u","attempt":2,"delay":0.5}|} );
    ( Event.Dispatch_fallback { reason = "r" },
      "dispatch_fallback",
      {|{"at":5,"ev":"dispatch_fallback","reason":"r"}|} );
    ( Event.Ckpt_push { worker = "w:1"; digest = "abcd"; bytes = 9 },
      "ckpt_push",
      {|{"at":5,"ev":"ckpt_push","worker":"w:1","digest":"abcd","bytes":9}|} );
    ( Event.Ckpt_hit { worker = "w:1"; digest = "abcd" },
      "ckpt_hit",
      {|{"at":5,"ev":"ckpt_hit","worker":"w:1","digest":"abcd"}|} );
    ( Event.Steal { unit_label = "u"; from_worker = "a"; to_worker = "b" },
      "steal",
      {|{"at":5,"ev":"steal","unit":"u","from":"a","to":"b"}|} );
    ( Event.Dispatch_inflight { worker = "w:1"; in_flight = 2 },
      "dispatch_inflight",
      {|{"at":5,"ev":"dispatch_inflight","worker":"w:1","in_flight":2}|} );
    ( Event.Span_begin
        {
          span = "queued";
          corr = 3;
          host = "dispatcher";
          wall_us = 99;
          seq = 4;
          detail = "d";
        },
      "span_begin",
      {|{"at":5,"ev":"span_begin","span":"queued","corr":3,"host":"dispatcher","wall_us":99,"seq":4,"detail":"d"}|}
    );
    ( Event.Span_end
        {
          span = "queued";
          corr = 3;
          host = "dispatcher";
          wall_us = 99;
          seq = 4;
          ok = false;
        },
      "span_end",
      {|{"at":5,"ev":"span_end","span":"queued","corr":3,"host":"dispatcher","wall_us":99,"seq":4,"ok":false}|}
    );
    ( Event.Submit
        { client = "c:1"; submission = 2; benchmark = "429.mcf"; units = 3 },
      "submit",
      {|{"at":5,"ev":"submit","client":"c:1","submission":2,"benchmark":"429.mcf","units":3}|}
    );
    ( Event.Admit { submission = 2; units = 2; credit = 4 },
      "admit",
      {|{"at":5,"ev":"admit","submission":2,"units":2,"credit":4}|} );
    ( Event.Artifact_hit { key = "k" },
      "artifact_hit",
      {|{"at":5,"ev":"artifact_hit","key":"k"}|} );
    ( Event.Artifact_store { key = "k"; bytes = 64 },
      "artifact_store",
      {|{"at":5,"ev":"artifact_store","key":"k","bytes":64}|} );
    ( Event.Store_evict { digest = "abcd"; bytes = 512 },
      "store_evict",
      {|{"at":5,"ev":"store_evict","digest":"abcd","bytes":512}|} );
    ( Event.Plan_round { round = 2; chosen = 4; completed = 8; mean = 0.75; ci95 = 0.125 },
      "plan_round",
      {|{"at":5,"ev":"plan_round","round":2,"chosen":4,"completed":8,"mean":0.75,"ci95":0.125}|}
    );
    ( Event.Plan_predict { offset = 4096; phase = 16; ipc = 0.5 },
      "plan_predict",
      {|{"at":5,"ev":"plan_predict","offset":4096,"phase":16,"ipc":0.5}|} );
    ( Event.Plan_stop { reason = "ci_target"; windows = 12; mean = 0.75; ci95 = 0.0625 },
      "plan_stop",
      {|{"at":5,"ev":"plan_stop","reason":"ci_target","windows":12,"mean":0.75,"ci95":0.0625}|}
    );
    ( Event.Straggler { worker = "w:1"; ratio_pct = 240 },
      "straggler",
      {|{"at":5,"ev":"straggler","worker":"w:1","ratio_pct":240}|} );
  ]

let test_event_schema () =
  List.iter
    (fun (ev, expect_name, expect_json) ->
      Alcotest.(check string) ("name of " ^ expect_name) expect_name (Event.name ev);
      Alcotest.(check string)
        ("json of " ^ expect_name)
        expect_json
        (Jsonx.to_string (Event.to_json ~at:5 ev)))
    event_samples;
  (* the sample list covers every constructor exactly once *)
  let covered =
    List.sort_uniq compare
      (List.map (fun (ev, _, _) -> constructor_index ev) event_samples)
  in
  Alcotest.(check (list int))
    "all constructors sampled"
    (List.init n_constructors Fun.id)
    covered

(* --- clocks -------------------------------------------------------------- *)

let test_clock_monotonic () =
  let prev = ref (Clock.ticks ()) in
  for _ = 1 to 10_000 do
    let t = Clock.ticks () in
    if t <= !prev then
      Alcotest.failf "ticks went %d -> %d (must be strictly increasing)" !prev t;
    prev := t
  done

let test_clock_stamp () =
  let a = Clock.stamp () in
  let b = Clock.stamp () in
  Alcotest.(check bool) "seq strictly increases" true (b.Clock.s_seq > a.Clock.s_seq);
  Alcotest.(check bool) "wall stamp is set" true (a.Clock.s_wall_us > 0)

(* --- histograms ---------------------------------------------------------- *)

let test_hist_empty () =
  let h = Hist.create () in
  Alcotest.(check int) "count" 0 (Hist.count h);
  Alcotest.(check int) "p50" 0 (Hist.percentile h 0.5);
  Alcotest.(check int) "min" 0 (Hist.min_value h);
  Alcotest.(check int) "max" 0 (Hist.max_value h);
  Alcotest.(check (float 0.0)) "mean" 0.0 (Hist.mean h)

let test_hist_percentiles () =
  let h = Hist.create () in
  for v = 1 to 100 do
    Hist.add h v
  done;
  Alcotest.(check int) "count" 100 (Hist.count h);
  Alcotest.(check int) "sum" 5050 (Hist.sum h);
  Alcotest.(check int) "min" 1 (Hist.min_value h);
  Alcotest.(check int) "max" 100 (Hist.max_value h);
  Alcotest.(check (float 1e-9)) "mean" 50.5 (Hist.mean h);
  (* rank 50 lands in bucket [32,63] -> estimate is its upper bound *)
  Alcotest.(check int) "p50 bucket bound" 63 (Hist.percentile h 0.5);
  (* rank 99 lands in [64,127], capped at the exact max *)
  Alcotest.(check int) "p99 capped at max" 100 (Hist.percentile h 0.99)

let test_hist_json () =
  let h = Hist.create () in
  List.iter (Hist.add h) [ 0; 1; 2; 3; 1024 ];
  let j = Hist.to_json h in
  Alcotest.(check int) "count" 5 (get_int "count" j);
  Alcotest.(check int) "sum" 1030 (get_int "sum" j);
  match Jsonx.member "buckets" j with
  | Some (Jsonx.List bs) ->
    Alcotest.(check bool) "non-empty buckets only" true
      (List.for_all (fun b -> get_int "n" b > 0) bs);
    (* cumulative bucket counts cover every added value *)
    Alcotest.(check int) "bucket counts total" 5
      (List.fold_left (fun acc b -> acc + get_int "n" b) 0 bs)
  | _ -> Alcotest.fail "missing buckets list"

(* --- spans --------------------------------------------------------------- *)

let test_span_roundtrip () =
  let sps =
    [
      Span.begin_ ~detail:"unit 0" ~span:"queued" ~corr:0 ~host:"worker:h:1" ();
      Span.end_ ~ok:false ~span:"queued" ~corr:0 ~host:"worker:h:1" ();
      Span.begin_ ~span:"running" ~corr:7 ~host:"local" ();
    ]
  in
  Alcotest.(check bool) "encode/decode roundtrip" true
    (Span.decode_list (Span.encode_list sps) = sps);
  List.iter
    (fun sp ->
      match Span.of_event (Span.to_event sp) with
      | Some sp' when sp' = sp -> ()
      | _ -> Alcotest.failf "event roundtrip lost span %S" sp.Span.span)
    sps;
  Alcotest.(check bool) "non-span event maps to None" true
    (Span.of_event Event.Halt = None);
  List.iter
    (fun bad ->
      match Span.decode_list bad with
      | exception Jsonx.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected Parse_error on %S" bad)
    [ "nonsense"; "[1,2]"; {|{"ev":"span_begin"}|} ]

(* --- hot-region profiler: exact reconciliation with Stats.t -------------- *)

let test_prof_reconciles name () =
  let prof = ref None in
  let ctl, _ = run_with_bus ~attach:(fun bus -> prof := Some (Prof.attach bus)) name in
  let p = Option.get !prof in
  (match Prof.reconciles p (Controller.stats ctl) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "profiler drift on %s: %s" name e);
  let top = Prof.top p ~n:5 in
  Alcotest.(check bool) "top bounded" true (List.length top <= 5);
  let heats = List.map (fun r -> r.Prof.r_host + r.Prof.r_overhead) top in
  Alcotest.(check bool) "top is hottest-first" true
    (List.sort (fun a b -> compare b a) heats = heats);
  (* rendering must not raise and must mention the hottest region *)
  let table = Format.asprintf "%a" (Prof.pp_table ~n:5) p in
  Alcotest.(check bool) "table non-empty" true (String.length table > 0)

(* --- metrics registry ---------------------------------------------------- *)

let test_registry_cells () =
  let r = Registry.create () in
  let c = Registry.counter r "reqs_total" in
  Registry.inc c 2;
  Registry.inc (Registry.counter r "reqs_total") 3;
  Alcotest.(check int) "get-or-register returns the same cell" 5
    (Registry.counter_value c);
  let g = Registry.gauge r "depth" in
  Registry.set g 7;
  Registry.set (Registry.gauge r "depth") 9;
  Alcotest.(check int) "gauge set through either handle" 9
    (Registry.gauge_value g);
  (match Registry.gauge r "reqs_total" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind clash on a name must be rejected");
  (match Registry.counter r "bad name" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "names must match the exposition grammar");
  (match Registry.hist r {|lat{worker="w"}|} with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "histograms cannot take labels");
  (* one kind per family, across label sets *)
  let _ = Registry.counter r {|by_code{code="200"}|} in
  match Registry.gauge r {|by_code{code="500"}|} with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "family kind is fixed by the first registration"

(* The exposition text is part of the observable surface: the CI job and
   any Prometheus scraper parse it, so it is pinned byte-for-byte. *)
let exposition_registry () =
  let r = Registry.create () in
  Registry.inc (Registry.counter r "events_total") 5;
  Registry.set (Registry.gauge r {|queue_depth{worker="h:1"}|}) 2;
  let h = Registry.hist r "bytes" in
  List.iter (Registry.observe h) [ 1; 2; 1024 ];
  r

let test_registry_exposition () =
  let expect =
    "# TYPE darco_bytes histogram\n"
    ^ "darco_bytes_bucket{le=\"1\"} 1\n"
    ^ "darco_bytes_bucket{le=\"3\"} 2\n"
    ^ "darco_bytes_bucket{le=\"2047\"} 3\n"
    ^ "darco_bytes_bucket{le=\"+Inf\"} 3\n"
    ^ "darco_bytes_sum 1027\n" ^ "darco_bytes_count 3\n"
    ^ "# TYPE darco_events_total counter\n" ^ "darco_events_total 5\n"
    ^ "# TYPE darco_queue_depth gauge\n"
    ^ "darco_queue_depth{worker=\"h:1\"} 2\n"
  in
  Alcotest.(check string) "exposition golden" expect
    (Registry.exposition (Registry.snapshot (exposition_registry ())))

let test_registry_json_roundtrip () =
  let s = Registry.snapshot (exposition_registry ()) in
  (* through the printer and parser, exactly as METR ships it *)
  match Registry.of_json (Jsonx.parse (Jsonx.to_string (Registry.to_json s))) with
  | Error e -> Alcotest.failf "snapshot did not parse back: %s" e
  | Ok s' ->
    Alcotest.(check string) "snapshot survives the wire"
      (Jsonx.to_string (Registry.to_json s))
      (Jsonx.to_string (Registry.to_json s'));
    Alcotest.(check string) "and renders the same exposition"
      (Registry.exposition s) (Registry.exposition s')

let test_registry_reconciles name () =
  let reg = ref None in
  let ctl, _ =
    run_with_bus ~attach:(fun bus -> reg := Some (Registry.attach bus)) name
  in
  match Registry.reconciles (Option.get !reg) (Controller.stats ctl) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "registry drift on %s: %s" name e

(* The registry is a pure fold over the event stream: replaying a
   recorded stream into a fresh registry must land on the same snapshot
   the live one reached. *)
let test_registry_rebuild () =
  let log = ref [] in
  let reg = ref None in
  let _ctl, _ =
    run_with_bus
      ~attach:(fun bus ->
        reg := Some (Registry.attach bus);
        Bus.attach bus ~name:"log" (fun ~at ev -> log := (at, ev) :: !log))
      "429.mcf"
  in
  let live = Registry.snapshot (Option.get !reg) in
  let rebuilt = Registry.create () in
  let apply = Registry.apply rebuilt in
  List.iter (fun (at, ev) -> apply ~at ev) (List.rev !log);
  Alcotest.(check bool) "stream was non-trivial" true
    (List.length !log > 100);
  Alcotest.(check string) "replayed snapshot identical to the live one"
    (Jsonx.to_string (Registry.to_json live))
    (Jsonx.to_string (Registry.to_json (Registry.snapshot rebuilt)))

(* --- flight recorder ----------------------------------------------------- *)

let test_recorder_ring () =
  let path = Filename.temp_file "darco_flight" ".jsonl" in
  let bus = Bus.create () in
  let r = Recorder.attach bus ~capacity:3 ~path in
  for i = 1 to 5 do
    Bus.emit bus ~at:i (Event.Chain_made { pc = i })
  done;
  Alcotest.(check bool) "no dump on a healthy run" false (Recorder.dumped r);
  (match Recorder.contents r with
  | [ (3, _); (4, _); (5, _) ] -> ()
  | c -> Alcotest.failf "ring should hold the last 3 events, has %d" (List.length c));
  Bus.emit bus ~at:6 (Event.Divergence { details = [ "boom" ] });
  Alcotest.(check bool) "divergence triggers a dump" true (Recorder.dumped r);
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let lines = List.rev !lines in
  Alcotest.(check int) "dump holds the full ring" 3 (List.length lines);
  List.iter (fun l -> ignore (Jsonx.parse l)) lines;
  Alcotest.(check string) "last line is the divergence" "divergence"
    (get_str "ev" (Jsonx.parse (List.nth lines 2)));
  Alcotest.(check int) "oldest first" 4 (get_int "at" (Jsonx.parse (List.hd lines)))

let test_recorder_capacity () =
  let bus = Bus.create () in
  match Recorder.attach bus ~capacity:0 ~path:"/dev/null" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 must be rejected"

(* --- Chrome trace export ------------------------------------------------- *)

let test_chrome_valid () =
  let c = Chrome.create () in
  let feed sp = Chrome.record c ~at:sp.Span.wall_us (Span.to_event sp) in
  feed (Span.begin_ ~detail:"u0" ~span:"queued" ~corr:0 ~host:"dispatcher" ());
  feed (Span.begin_ ~span:"running" ~corr:0 ~host:"worker:h:1" ());
  feed (Span.end_ ~span:"running" ~corr:0 ~host:"worker:h:1" ());
  feed (Span.end_ ~span:"queued" ~corr:0 ~host:"dispatcher" ());
  Chrome.record c ~at:123 (Event.Worker_up { worker = "h:1" });
  (match Chrome.validate (Chrome.to_json c) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "collector output invalid: %s" e);
  let path = Filename.temp_file "darco_chrome" ".json" in
  Chrome.write_file c path;
  (match Chrome.validate_file path with
  | Ok () -> ()
  | Error e -> Alcotest.failf "written file invalid: %s" e);
  Sys.remove path

let test_chrome_rejects_unclosed () =
  let c = Chrome.create () in
  Chrome.record c ~at:1
    (Span.to_event (Span.begin_ ~span:"queued" ~corr:0 ~host:"dispatcher" ()));
  (match Chrome.validate (Chrome.to_json c) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unclosed B span must not validate");
  List.iter
    (fun bad ->
      match Chrome.validate (Jsonx.parse bad) with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "must reject %s" bad)
    [
      {|{"no_trace_events":1}|};
      {|{"traceEvents":[{"ph":"B"}]}|};
      {|{"traceEvents":[{"name":"x","ph":"B","ts":1,"pid":1,"tid":1},{"name":"y","ph":"E","ts":2,"pid":1,"tid":1}]}|};
    ]

(* --- metrics hists section ----------------------------------------------- *)

let test_metrics_hists () =
  let h = Hist.create () in
  Hist.add h 5;
  let s = Stats.create () in
  let j = Jsonx.parse (Metrics.to_string ~hists:[ ("lat", h) ] s) in
  (match Jsonx.member "hists" j with
  | Some hs -> (
    match Jsonx.member "lat" hs with
    | Some lat -> Alcotest.(check int) "hist count" 1 (get_int "count" lat)
    | None -> Alcotest.fail "missing hists.lat")
  | None -> Alcotest.fail "missing hists section");
  (* absent when no hists are given: historical snapshots stay byte-stable *)
  Alcotest.(check bool) "no hists key by default" true
    (Jsonx.member "hists" (Jsonx.parse (Metrics.to_string s)) = None)

(* --- per-domain accumulate / merge --------------------------------------- *)

(* A stream with every counter-moving constructor except SBM retirement
   (startup marking depends on how much of the stream each instance saw,
   so [startup_insns] gets its own case below). *)
let merge_stream =
  let open Event in
  [
    Init { cost = 40 };
    Interp_block { pc = 0x400; insns = 12; cost = 30 };
    Bb_translated { pc = 0x400; guest_len = 12; host_len = 20; cost = 25 };
    Region_exec
      {
        pc = 0x400;
        guest_bb = 12;
        guest_sb = 0;
        host_bb = 18;
        host_sb = 0;
        chains_followed = 1;
        wasted_host = 2;
      };
    Interp_step { pc = 0x404; cost = 3 };
    Interp_exec { pc = 0x404; cost = 3 };
    Sb_translated
      { pc = 0x404; guest_len = 30; host_len = 44; cost = 60; unrolled = true };
    Chain_made { pc = 0x404 };
    Ibtc_miss { pc = 0x408 };
    Ibtc_fill { pc = 0x408 };
    Rollback { kind = Rb_assert; pc = 0x404 };
    Rollback { kind = Rb_alias; pc = 0x400 };
    Deopt_rebuild { kind = De_noassert; pc = 0x404 };
    Deopt_rebuild { kind = De_nomem; pc = 0x400 };
    Cache_flush { regions = 2; host_insns = 64 };
    Page_install { index = 3 };
    Syscall { eip = 0x40c; cost = 9 };
    Validation { kind = V_syscall };
    Clock_sync { retired = 100 };
    Slice_end
      { stop = St_halt; overheads = [ (Stats.Ov_chaining, 4); (Stats.Ov_other, 2) ] };
    Halt;
  ]

(* Splitting a stream across private instances and merging them must be
   indistinguishable from one instance having seen everything — the
   contract that lets each worker domain accumulate without locks. *)
let test_stats_merge_splits () =
  let whole = Stats.create () in
  List.iteri (fun i ev -> Agg.apply whole ~at:i ev) merge_stream;
  let a = Stats.create () and b = Stats.create () in
  List.iteri
    (fun i ev -> Agg.apply (if i mod 2 = 0 then a else b) ~at:i ev)
    merge_stream;
  Stats.merge ~into:a b;
  if not (Stats.equal whole a) then
    Alcotest.failf "merged halves drift from the whole stream:\n%s\nvs\n%s"
      (render whole) (render a);
  (* merging an empty instance is the identity *)
  Stats.merge ~into:a (Stats.create ());
  Alcotest.(check bool) "identity" true (Stats.equal whole a)

let test_stats_merge_startup () =
  let mark n =
    let s = Stats.create () in
    s.Stats.guest_im <- n;
    Stats.note_sbm_start s;
    s
  in
  let a = mark 500 and b = mark 300 in
  Stats.merge ~into:a b;
  Alcotest.(check (option int)) "earliest mark wins" (Some 300) a.Stats.startup_insns;
  let c = Stats.create () in
  Stats.merge ~into:c (mark 700);
  Alcotest.(check (option int)) "present beats absent" (Some 700) c.Stats.startup_insns;
  let d = mark 200 in
  Stats.merge ~into:d (Stats.create ());
  Alcotest.(check (option int)) "absent keeps present" (Some 200) d.Stats.startup_insns

let test_prof_merge_splits () =
  let feed p evs = List.iteri (fun i ev -> Prof.apply p ~at:i ev) evs in
  let whole = Prof.create () in
  feed whole merge_stream;
  let a = Prof.create () and b = Prof.create () in
  List.iteri
    (fun i ev -> Prof.apply (if i mod 2 = 0 then a else b) ~at:i ev)
    merge_stream;
  Prof.merge ~into:a b;
  Alcotest.(check string) "merged profile identical to whole-stream profile"
    (Jsonx.to_string (Prof.to_json whole))
    (Jsonx.to_string (Prof.to_json a));
  (* and it still reconciles against the equally-merged stats *)
  let sa = Stats.create () and sb = Stats.create () in
  List.iteri
    (fun i ev -> Agg.apply (if i mod 2 = 0 then sa else sb) ~at:i ev)
    merge_stream;
  Stats.merge ~into:sa sb;
  match Prof.reconciles a sa with
  | Ok () -> ()
  | Error e -> Alcotest.failf "merged profiler drifts from merged stats: %s" e

(* --- registry under domain contention ------------------------------------ *)

(* Spawns domains, so it must live in the fork-free tail of the suite
   with the clock test. *)
let test_registry_multicore () =
  let r = Registry.create () in
  let per = 10_000 and ndom = 4 in
  let doms =
    List.init ndom (fun i ->
        Domain.spawn (fun () ->
            let c = Registry.counter r "hits_total" in
            let g = Registry.gauge r (Printf.sprintf {|lane{d="%d"}|} i) in
            let h = Registry.hist r "obs_bytes" in
            for v = 1 to per do
              Registry.inc c 1;
              Registry.set g v;
              Registry.observe h v
            done))
  in
  List.iter Domain.join doms;
  let s = Registry.snapshot r in
  Alcotest.(check int) "counter exact under contention" (ndom * per)
    (List.assoc "hits_total" s.Registry.counters);
  List.iter
    (fun i ->
      Alcotest.(check int)
        (Printf.sprintf "gauge lane %d holds its last write" i)
        per
        (List.assoc (Printf.sprintf {|lane{d="%d"}|} i) s.Registry.gauges))
    (List.init ndom Fun.id);
  let j = List.assoc "obs_bytes" s.Registry.hists in
  Alcotest.(check int) "hist count exact" (ndom * per) (get_int "count" j);
  Alcotest.(check int) "hist sum exact"
    (ndom * (per * (per + 1) / 2))
    (get_int "sum" j)

(* --- cross-domain clock --------------------------------------------------- *)

(* Must stay the suite's LAST test: once a domain has been spawned this
   process can never Unix.fork again (OCaml 5 runtime restriction), so no
   fork-based test may run after it. *)
let test_clock_multicore () =
  let per = 2_000 and ndom = 4 in
  let doms =
    List.init ndom (fun _ ->
        Domain.spawn (fun () -> List.init per (fun _ -> Clock.ticks ())))
  in
  let per_domain = List.map Domain.join doms in
  let all = List.concat per_domain in
  Alcotest.(check int) "all handed out" (ndom * per) (List.length all);
  let tbl = Hashtbl.create (ndom * per) in
  List.iter
    (fun t ->
      if Hashtbl.mem tbl t then Alcotest.failf "tick %d handed out twice" t;
      Hashtbl.add tbl t ())
    all;
  List.iter
    (fun ts ->
      ignore
        (List.fold_left
           (fun prev t ->
             if t <= prev then
               Alcotest.failf "ticks went %d -> %d within one domain" prev t;
             t)
           min_int ts))
    per_domain

let () =
  Alcotest.run "obs"
    [
      ( "jsonx",
        [
          Alcotest.test_case "roundtrip" `Quick test_jsonx_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_jsonx_parse_errors;
          QCheck_alcotest.to_alcotest prop_jsonx_roundtrip;
          QCheck_alcotest.to_alcotest prop_jsonx_string_exact;
          QCheck_alcotest.to_alcotest prop_jsonx_print_stable;
        ] );
      ( "aggregator",
        List.map
          (fun w ->
            Alcotest.test_case ("matches direct stats: " ^ w) `Quick
              (test_aggregator_matches w))
          workloads );
      ( "sinks",
        [
          Alcotest.test_case "trace JSONL parses back" `Quick test_trace_jsonl;
          Alcotest.test_case "no-sink run identical" `Quick test_no_sink_identical;
          Alcotest.test_case "metrics snapshot" `Quick test_metrics_json;
          Alcotest.test_case "metrics hists section" `Quick test_metrics_hists;
        ] );
      ( "events",
        [ Alcotest.test_case "every constructor: name + JSON schema" `Quick
            test_event_schema ] );
      ( "clock",
        [
          Alcotest.test_case "ticks strictly monotonic" `Quick test_clock_monotonic;
          Alcotest.test_case "stamps sequence" `Quick test_clock_stamp;
        ] );
      ( "hist",
        [
          Alcotest.test_case "empty" `Quick test_hist_empty;
          Alcotest.test_case "percentiles" `Quick test_hist_percentiles;
          Alcotest.test_case "json" `Quick test_hist_json;
        ] );
      ( "spans",
        [ Alcotest.test_case "roundtrip + malformed input" `Quick test_span_roundtrip ]
      );
      ( "profiler",
        List.map
          (fun w ->
            Alcotest.test_case ("reconciles with Stats.t: " ^ w) `Quick
              (test_prof_reconciles w))
          workloads );
      ( "registry",
        Alcotest.test_case "cells + kind safety" `Quick test_registry_cells
        :: Alcotest.test_case "exposition golden" `Quick test_registry_exposition
        :: Alcotest.test_case "snapshot JSON roundtrip" `Quick
             test_registry_json_roundtrip
        :: Alcotest.test_case "rebuilt from the event stream" `Quick
             test_registry_rebuild
        :: List.map
             (fun w ->
               Alcotest.test_case ("reconciles with Stats.t: " ^ w) `Quick
                 (test_registry_reconciles w))
             workloads );
      ( "recorder",
        [
          Alcotest.test_case "ring + dump on divergence" `Quick test_recorder_ring;
          Alcotest.test_case "rejects zero capacity" `Quick test_recorder_capacity;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "valid timeline validates" `Quick test_chrome_valid;
          Alcotest.test_case "rejects malformed timelines" `Quick
            test_chrome_rejects_unclosed;
        ] );
      ( "merge",
        [
          Alcotest.test_case "stats: split stream = whole stream" `Quick
            test_stats_merge_splits;
          Alcotest.test_case "stats: startup mark" `Quick test_stats_merge_startup;
          Alcotest.test_case "prof: split stream = whole stream" `Quick
            test_prof_merge_splits;
        ] );
      (* keep last: spawns domains, which forbids fork for the rest of
         the process *)
      ( "multicore",
        [
          Alcotest.test_case "ticks unique across domains" `Quick
            test_clock_multicore;
          Alcotest.test_case "registry exact under domain contention" `Quick
            test_registry_multicore;
        ] );
    ]
