open Darco
open Darco_obs

(* The observability layer: the event bus must be invisible when nothing
   listens, and when the aggregator listens it must rebuild the exact
   Stats.t the core maintains directly. *)

let workloads = [ "401.bzip2"; "429.mcf"; "458.sjeng" ]
let max_insns = 120_000

let run_with_bus ?(attach = fun _ -> ()) name =
  let e = Darco_workloads.Registry.find name in
  let bus = Bus.create () in
  attach bus;
  let ctl = Controller.create ~bus ~seed:42 (e.build ()) in
  ignore (Controller.run ~max_insns ctl);
  (ctl, bus)

(* --- Jsonx: the hand-rolled JSON printer/parser ------------------------- *)

let test_jsonx_roundtrip () =
  let samples =
    [
      Jsonx.Null;
      Jsonx.Bool true;
      Jsonx.Int (-42);
      Jsonx.Float 3.5;
      Jsonx.String "with \"quotes\", \\ and \n control";
      Jsonx.List [ Jsonx.Int 1; Jsonx.Null; Jsonx.String "x" ];
      Jsonx.Obj
        [
          ("at", Jsonx.Int 17);
          ("ev", Jsonx.String "slice_end");
          ("nested", Jsonx.Obj [ ("empty", Jsonx.List []) ]);
        ];
    ]
  in
  List.iter
    (fun j ->
      let s = Jsonx.to_string j in
      Alcotest.(check bool) ("roundtrip " ^ s) true (Jsonx.parse s = j))
    samples

(* --- Jsonx: property-based round-trip ----------------------------------- *)

(* Two deliberate asymmetries in the printer/parser pair:
   - an integer-valued float >= 1e15 prints via %.17g without a decimal
     point, so it parses back as [Int];
   - the parser folds numerically-equal floats (e.g. -0.0 vs 0.0).
   Semantic equality accepts exactly those coercions and nothing else. *)
let rec jsonx_sem_eq a b =
  match (a, b) with
  | Jsonx.Float x, Jsonx.Float y -> x = y
  | Jsonx.Int i, Jsonx.Float f | Jsonx.Float f, Jsonx.Int i ->
    Float.is_integer f && Float.abs f < 4e18 && int_of_float f = i
  | Jsonx.List xs, Jsonx.List ys ->
    List.length xs = List.length ys && List.for_all2 jsonx_sem_eq xs ys
  | Jsonx.Obj xs, Jsonx.Obj ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && jsonx_sem_eq v1 v2)
         xs ys
  | _ -> a = b

let gen_jsonx =
  let open QCheck.Gen in
  (* full ASCII, including the control characters that print as \u escapes
     and the quote/backslash/newline family with dedicated escapes *)
  let ascii_string = string_size ~gen:(map Char.chr (int_range 0 127)) (int_range 0 12) in
  let edge_floats =
    [
      0.0; -0.0; 1.0; -1.0; 0.1; -0.5; Float.pi; 1e-300; 1.5e300; max_float;
      min_float; 4.94e-324 (* subnormal *); 1e15 (* %.1f/%.17g boundary *);
      1e16; 9007199254740992.0 (* 2^53 *); 0.30000000000000004;
    ]
  in
  let finite f = if Float.is_finite f then f else 0.0 in
  let leaf =
    oneof
      [
        return Jsonx.Null;
        map (fun b -> Jsonx.Bool b) bool;
        map (fun i -> Jsonx.Int i) int;
        map (fun f -> Jsonx.Float f) (oneof [ oneofl edge_floats; map finite float ]);
        map (fun s -> Jsonx.String s) ascii_string;
      ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then leaf
         else
           frequency
             [
               (2, leaf);
               (1, map (fun l -> Jsonx.List l) (list_size (int_range 0 4) (self (n / 2))));
               ( 1,
                 map
                   (fun kvs -> Jsonx.Obj kvs)
                   (list_size (int_range 0 4) (pair ascii_string (self (n / 2)))) );
             ])

let arb_jsonx = QCheck.make ~print:Jsonx.to_string gen_jsonx

let prop_jsonx_roundtrip =
  QCheck.Test.make ~name:"parse (to_string j) = j up to Int/Float coercion"
    ~count:500 arb_jsonx (fun j -> jsonx_sem_eq (Jsonx.parse (Jsonx.to_string j)) j)

(* Strings must round-trip byte-exactly, whatever needed escaping. *)
let prop_jsonx_string_exact =
  QCheck.Test.make ~name:"escaped strings round-trip byte-exactly" ~count:500
    QCheck.(string_gen_of_size Gen.(int_range 0 64) Gen.(map Char.chr (int_range 0 127)))
    (fun s -> Jsonx.parse (Jsonx.to_string (Jsonx.String s)) = Jsonx.String s)

(* Printing is a fixpoint after one parse: print . parse . print = print. *)
let prop_jsonx_print_stable =
  QCheck.Test.make ~name:"to_string stable across a parse round" ~count:500
    arb_jsonx (fun j ->
      let s = Jsonx.to_string j in
      String.equal (Jsonx.to_string (Jsonx.parse s)) s)

let test_jsonx_parse_errors () =
  List.iter
    (fun s ->
      match Jsonx.parse s with
      | exception Jsonx.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected parse error on %S" s)
    [ ""; "{"; "[1,]"; "\"unterminated"; "truely" ]

(* --- aggregator exactness ----------------------------------------------- *)

let render stats = Format.asprintf "%a" Stats.pp_summary stats

let test_aggregator_matches name () =
  let agg = ref (Stats.create ()) in
  let ctl, _bus = run_with_bus ~attach:(fun bus -> agg := Agg.attach bus) name in
  let direct = Controller.stats ctl in
  if not (Stats.equal direct !agg) then
    Alcotest.failf "aggregator drift on %s:\ndirect:\n%s\naggregated:\n%s" name
      (render direct) (render !agg);
  Alcotest.(check string) "pp_summary identical" (render direct) (render !agg)

(* --- trace sink: every JSONL line parses back --------------------------- *)

let get_int key j =
  match Option.bind (Jsonx.member key j) Jsonx.to_int with
  | Some n -> n
  | None -> Alcotest.failf "missing int field %S" key

let get_str key j =
  match Option.bind (Jsonx.member key j) Jsonx.to_str with
  | Some s -> s
  | None -> Alcotest.failf "missing string field %S" key

let test_trace_jsonl () =
  let path = Filename.temp_file "darco_trace" ".jsonl" in
  let oc = ref stdout in
  let ctl, _bus =
    run_with_bus ~attach:(fun bus -> oc := Trace.attach_file bus path) "429.mcf"
  in
  close_out !oc;
  let ic = open_in path in
  let lines = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lines;
       let j = Jsonx.parse line in
       let at = get_int "at" j in
       let ev = get_str "ev" j in
       if at < 0 || String.length ev = 0 then
         Alcotest.failf "bad trace record: %s" line
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "trace non-empty" true (!lines > 0);
  Alcotest.(check bool) "run retired instructions" true
    (Stats.guest_total (Controller.stats ctl) > 0)

(* --- silent bus: no sinks must not change execution --------------------- *)

let test_no_sink_identical () =
  let quiet, qbus = run_with_bus "401.bzip2" in
  Alcotest.(check bool) "bus stays inactive" false (Bus.active qbus);
  let observed, _ =
    run_with_bus ~attach:(fun bus -> ignore (Agg.attach bus)) "401.bzip2"
  in
  let sq = Controller.stats quiet and so = Controller.stats observed in
  Alcotest.(check int) "same guest_total" (Stats.guest_total sq)
    (Stats.guest_total so);
  Alcotest.(check bool) "identical counters" true (Stats.equal sq so)

(* --- metrics snapshot parses back with consistent totals ---------------- *)

let test_metrics_json () =
  let ctl, _ = run_with_bus "458.sjeng" in
  let s = Controller.stats ctl in
  let j = Jsonx.parse (Metrics.to_string s) in
  let section name =
    match Jsonx.member name j with
    | Some sub -> sub
    | None -> Alcotest.failf "missing section %S" name
  in
  Alcotest.(check int) "guest total" (Stats.guest_total s)
    (get_int "total" (section "guest"));
  Alcotest.(check int) "overhead total" (Stats.total_overhead s)
    (get_int "total" (section "overhead"))

let () =
  Alcotest.run "obs"
    [
      ( "jsonx",
        [
          Alcotest.test_case "roundtrip" `Quick test_jsonx_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_jsonx_parse_errors;
          QCheck_alcotest.to_alcotest prop_jsonx_roundtrip;
          QCheck_alcotest.to_alcotest prop_jsonx_string_exact;
          QCheck_alcotest.to_alcotest prop_jsonx_print_stable;
        ] );
      ( "aggregator",
        List.map
          (fun w ->
            Alcotest.test_case ("matches direct stats: " ^ w) `Quick
              (test_aggregator_matches w))
          workloads );
      ( "sinks",
        [
          Alcotest.test_case "trace JSONL parses back" `Quick test_trace_jsonl;
          Alcotest.test_case "no-sink run identical" `Quick test_no_sink_identical;
          Alcotest.test_case "metrics snapshot" `Quick test_metrics_json;
        ] );
    ]
