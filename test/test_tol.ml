open Darco_guest
open Darco
module Rng = Darco_util.Rng

(* ------------------------------------------------------------------ *)
(* Helpers                                                            *)
(* ------------------------------------------------------------------ *)

let copy_memory src =
  let dst = Memory.create `Auto_zero in
  List.iter
    (fun idx -> Memory.install_page dst idx (Memory.get_page src idx))
    (Memory.touched_pages src);
  dst

let random_guest_state seed =
  let rng = Rng.create (seed + 13) in
  let cpu = Cpu.create () in
  Array.iter
    (fun r -> Cpu.set cpu r (Rng.int rng 0x10000))
    [| Isa.EAX; ECX; EDX; ESI; EDI |];
  Cpu.set cpu EBX Tgen.data_base;
  Cpu.set cpu EBP (Tgen.data_base + 512);
  Cpu.set cpu ESP Loader.stack_top;
  cpu.flags <- Rng.int rng 16;
  Array.iter (fun f -> Cpu.setf cpu f (Rng.float rng *. 16.0)) Isa.all_fregs;
  let mem = Memory.create `Auto_zero in
  for i = 0 to (Tgen.data_size / 4) - 1 do
    Memory.write32 mem (Tgen.data_base + (4 * i)) (Rng.int rng 0x1000000)
  done;
  (cpu, mem)

(* Every value must be defined exactly once and before its first use —
   the invariant the whole pipeline relies on (checked after each pass). *)
let check_ssa_discipline what (r : Regionir.t) =
  let defined = Hashtbl.create 64 and fdefined = Hashtbl.create 64 in
  Array.iteri
    (fun i insn ->
      List.iter
        (fun v ->
          if not (Hashtbl.mem defined v) then
            Alcotest.failf "%s: @%d uses v%d before its definition" what i v)
        (Ir.uses insn);
      List.iter
        (fun v ->
          if not (Hashtbl.mem fdefined v) then
            Alcotest.failf "%s: @%d uses vf%d before its definition" what i v)
        (Ir.fuses insn);
      List.iter
        (fun v ->
          if Hashtbl.mem defined v then
            Alcotest.failf "%s: v%d defined twice (at @%d)" what v i;
          Hashtbl.replace defined v ())
        (Ir.defs insn);
      List.iter (fun v -> Hashtbl.replace fdefined v ()) (Ir.fdefs insn))
    r.body

let translate_straightline ?(exit_pc = 0xEE00) insns =
  let ctx = Translate.create ~entry_pc:0x1000 in
  List.iter (fun i -> Translate.translate_insn ctx i ~pc:0x1000 ~len:1) insns;
  Translate.emit_exit ctx (Ir.Xdirect exit_pc);
  Translate.finalize ctx ~mode:`Super ~prof:None

(* Run region IR against a copy of the given state. *)
let eval_ir region (cpu0, mem0) =
  let cpu = Cpu.copy cpu0 in
  let mem = copy_memory mem0 in
  match Exec.run region cpu mem with
  | Exec.Exited (_, _) -> `State (cpu, mem)
  | Exec.Assert_failed -> Alcotest.fail "unexpected assert failure in straight-line IR"
  | Exec.Alias_failed ->
    (* hardware alias protection fired; the system rolls back and
       retranslates, so the stage comparison is vacuous *)
    `Rolled_back

(* Run the region through regalloc + codegen + the host emulator. *)
let eval_host cfg region (cpu0, mem0) =
  let cpu = Cpu.copy cpu0 in
  let mem = copy_memory mem0 in
  let alloc = Regalloc.allocate region in
  let code, _ =
    Codegen.lower cfg region ~alloc ~spill_base:(Loader.tol_base + 0x1000)
      ~ibtc_base:Loader.tol_base
  in
  let hw : Darco_host.Code.region =
    {
      id = 0;
      entry_pc = region.entry_pc;
      mode = region.mode;
      base = 0xC0000000;
      code;
      incoming = [];
      invalidated = false;
    }
  in
  let m = Darco_host.Machine.create mem in
  Darco_host.Machine.copy_guest_in m cpu;
  match (Darco_host.Emulator.run m ~resolve:(fun _ -> None) hw).stop with
  | Darco_host.Emulator.Stop_exit _ ->
    Darco_host.Machine.copy_guest_out m cpu;
    `State (cpu, mem)
  | Darco_host.Emulator.Stop_rollback (`Alias, _) -> `Rolled_back
  | _ -> Alcotest.fail "host run did not exit normally"

(* Reference: interpret the same instructions with the shared stepper. *)
let eval_interp insns (cpu0, mem0) =
  let cpu = Cpu.copy cpu0 in
  let mem = copy_memory mem0 in
  let a = Asm.create ~base:0x1000 () in
  List.iter (Asm.insn a) insns;
  Asm.insn a Halt;
  let p = Asm.assemble a in
  (* place code far from the data region *)
  List.iter (fun (addr, b) -> Memory.blit_bytes mem addr b) p.Program.chunks;
  cpu.eip <- 0x1000;
  let ic = Step.icache_create () in
  while not cpu.Cpu.halted do
    ignore (Step.step ic cpu mem)
  done;
  cpu.halted <- false;
  (cpu, mem)

let compare_states what outcome_a (cpu_b, mem_b) =
  match outcome_a with
  | `Rolled_back -> ()
  | `State (cpu_a, mem_a) ->
    let a = Cpu.copy cpu_a and b = Cpu.copy cpu_b in
    a.eip <- 0;
    b.eip <- 0;
    Tgen.check_cpu_equal what a b;
    (* ignore the code page the interpreter wrote and TOL-internal pages *)
    let interesting idx =
      let base = Memory.page_base idx in
      base >= Tgen.data_base && base < Loader.tol_base
    in
    List.iter
      (fun idx ->
        if interesting idx && not (Memory.equal_page mem_a mem_b idx) then
          Alcotest.failf "%s: memory page 0x%x differs" what (Memory.page_base idx))
      (List.sort_uniq compare (Memory.touched_pages mem_a @ Memory.touched_pages mem_b))

(* The central property: interpreter semantics = translated IR = optimized
   IR = scheduled IR = generated host code, for random instruction blocks. *)
let differential_case seed =
  let rng = Rng.create (seed * 97) in
  let insns = Tgen.insn_block rng (1 + Rng.int rng 25) in
  let state = random_guest_state seed in
  let cfg = Config.default in
  let reference = eval_interp insns state in
  let raw = translate_straightline insns in
  check_ssa_discipline "raw translation" raw;
  compare_states "translated IR vs interpreter" (eval_ir raw state) reference;
  let optimized = Opt.run cfg raw in
  check_ssa_discipline "optimized" optimized;
  compare_states "optimized IR vs interpreter" (eval_ir optimized state) reference;
  let scheduled = Sched.run cfg optimized in
  check_ssa_discipline "scheduled" scheduled;
  compare_states "scheduled IR vs interpreter" (eval_ir scheduled state) reference;
  compare_states "host code vs interpreter" (eval_host cfg scheduled state) reference;
  (* and with every optimization disabled, the dumb path must also agree *)
  let dumb =
    {
      cfg with
      opt_const_fold = false;
      opt_copy_prop = false;
      opt_cse = false;
      opt_dce = false;
      opt_rle = false;
      opt_schedule = false;
    }
  in
  compare_states "unoptimized host code vs interpreter" (eval_host dumb raw state) reference;
  true

let prop_differential =
  QCheck.Test.make ~name:"interpreter = IR = optimized = scheduled = host code"
    ~count:300 QCheck.small_int differential_case

(* ------------------------------------------------------------------ *)
(* Optimizer unit tests                                               *)
(* ------------------------------------------------------------------ *)

let plain_exit : Ir.exit_spec =
  { target = Ir.Xdirect 0x2000; retired = 1; prefer_bb = false; edge = None }

let region_of body : Regionir.t =
  { entry_pc = 0x1000; mode = `Super; body; prof = None; guest_len = 1 }

let test_const_folding () =
  let r =
    region_of
      [|
        Ir.Ili (0, 2);
        Ir.Ili (1, 3);
        Ir.Ibin (Add, 2, 0, 1);
        Ir.Iput (EAX, 2);
        Ir.Iexit plain_exit;
      |]
  in
  let r' = Opt.run Config.default r in
  let folded =
    Array.exists (function Ir.Ili (2, 5) -> true | _ -> false) r'.body
  in
  Alcotest.(check bool) "2+3 folded to 5" true folded

let test_dce_removes_dead () =
  let r =
    region_of
      [| Ir.Ili (0, 99); Ir.Ili (1, 7); Ir.Iput (EAX, 1); Ir.Iexit plain_exit |]
  in
  let r' = Opt.run Config.default r in
  Alcotest.(check bool) "dead Ili removed" false
    (Array.exists (function Ir.Ili (_, 99) -> true | _ -> false) r'.body)

let test_dce_keeps_stores () =
  let r =
    region_of
      [| Ir.Ili (0, Tgen.data_base); Ir.Ili (1, 7); Ir.Istore (W32, 1, 0, 0); Ir.Iexit plain_exit |]
  in
  let r' = Opt.run Config.default r in
  Alcotest.(check bool) "store survives" true
    (Array.exists (function Ir.Istore _ -> true | _ -> false) r'.body)

let test_cse_dedups () =
  let r =
    region_of
      [|
        Ir.Iget (0, EAX);
        Ir.Iget (1, ECX);
        Ir.Ibin (Add, 2, 0, 1);
        Ir.Ibin (Add, 3, 0, 1);
        Ir.Iput (EDX, 2);
        Ir.Iput (ESI, 3);
        Ir.Iexit plain_exit;
      |]
  in
  let r' = Opt.run Config.default r in
  let adds =
    Array.fold_left
      (fun acc i -> match i with Ir.Ibin (Add, _, _, _) -> acc + 1 | _ -> acc)
      0 r'.body
  in
  Alcotest.(check int) "one add remains" 1 adds

let test_rle_forwards_store () =
  let r =
    region_of
      [|
        Ir.Ili (0, Tgen.data_base);
        Ir.Iget (1, EAX);
        Ir.Istore (W32, 1, 0, 8);
        Ir.Iload (W32, false, 2, 0, 8);
        Ir.Iput (ECX, 2);
        Ir.Iexit plain_exit;
      |]
  in
  let r' = Opt.run Config.default r in
  Alcotest.(check bool) "load eliminated" false
    (Array.exists (function Ir.Iload _ -> true | _ -> false) r'.body)

let test_rle_respects_aliasing () =
  (* an intervening store through an unknown base must kill the entry *)
  let r =
    region_of
      [|
        Ir.Ili (0, Tgen.data_base);
        Ir.Iget (1, EAX);
        Ir.Iget (5, ECX);
        Ir.Istore (W32, 1, 0, 8);
        Ir.Istore (W32, 1, 5, 0);
        Ir.Iload (W32, false, 2, 0, 8);
        Ir.Iput (ECX, 2);
        Ir.Iexit plain_exit;
      |]
  in
  let r' = Opt.run Config.default r in
  Alcotest.(check bool) "load survives may-alias store" true
    (Array.exists (function Ir.Iload _ -> true | _ -> false) r'.body)

(* ------------------------------------------------------------------ *)
(* Register allocator under pressure                                  *)
(* ------------------------------------------------------------------ *)

let test_regalloc_spills_correctly () =
  let n = 70 in
  let body = ref [] in
  for i = 0 to n - 1 do
    body := Ir.Ili (i, (i * 7) + 1) :: !body
  done;
  (* consume them all so every value stays live to the end *)
  let acc = ref n in
  for i = 1 to n - 1 do
    let d = n + i in
    body := Ir.Ibin (Add, d, (if i = 1 then 0 else !acc), i) :: !body;
    acc := d
  done;
  body := Ir.Iput (EAX, !acc) :: !body;
  body := Ir.Iexit plain_exit :: !body;
  let region = region_of (Array.of_list (List.rev !body)) in
  let alloc = Regalloc.allocate region in
  let spills =
    let count = ref 0 in
    Array.iter (function Regalloc.Slot _ -> incr count | Regalloc.Phys _ -> ()) alloc.int_loc;
    !count
  in
  Alcotest.(check bool) "pressure forced spills" true (spills > 0);
  let state = random_guest_state 3 in
  let expected = List.fold_left (fun acc i -> acc + (i * 7) + 1) 0 (List.init n (fun i -> i)) in
  match eval_host Config.default region state with
  | `State (cpu, _) ->
    Alcotest.(check int) "spilled computation correct" (Semantics.mask32 expected)
      (Cpu.get cpu EAX)
  | `Rolled_back -> Alcotest.fail "unexpected rollback" 

(* ------------------------------------------------------------------ *)
(* Branch fusion / condition lowering                                 *)
(* ------------------------------------------------------------------ *)

let test_branch_fusion_avoids_mkfl () =
  let ctx = Translate.create ~entry_pc:0x1000 in
  Translate.translate_insn ctx (Cmp (Reg EAX, Reg ECX)) ~pc:0 ~len:1;
  (match Translate.lower_cond ctx Isa.L with
  | Translate.Cfused (Blt, _, _) -> ()
  | _ -> Alcotest.fail "cmp+jl should fuse to blt");
  Translate.emit_exit ctx (Ir.Xdirect 0);
  let r = Translate.finalize ctx ~mode:`Super ~prof:None in
  (* the flags ARE live out, so exactly one Mkfl materializes them at exit *)
  let mkfls =
    Array.fold_left
      (fun acc i -> match i with Ir.Imkfl _ -> acc + 1 | _ -> acc)
      0 r.body
  in
  Alcotest.(check int) "one materialization at exit" 1 mkfls

let test_dead_flags_not_materialized () =
  (* two back-to-back flag producers: only the last is architecturally
     visible, so only one Mkfl should remain after DCE *)
  let r =
    translate_straightline
      [ Alu (Add, Reg EAX, Reg ECX); Alu (Sub, Reg EDX, Reg ESI) ]
  in
  let r' = Opt.run Config.default r in
  let mkfls =
    Array.fold_left
      (fun acc i -> match i with Ir.Imkfl _ -> acc + 1 | _ -> acc)
      0 r'.body
  in
  Alcotest.(check int) "dead flag computation dropped" 1 mkfls

(* ------------------------------------------------------------------ *)
(* Gbb decoding                                                       *)
(* ------------------------------------------------------------------ *)

let decode_first insns =
  let a = Asm.create ~base:0x1000 () in
  List.iter (Asm.insn a) insns;
  let p = Asm.assemble a in
  let _, mem = Loader.boot p in
  Gbb.decode (Step.icache_create ()) mem 0x1000

let test_gbb_terminators () =
  let bb = decode_first [ Nop; Jmp 0x2000 ] in
  (match bb.term with Gbb.Tjmp 0x2000 -> () | _ -> Alcotest.fail "tjmp");
  Alcotest.(check int) "counts terminator" 2 bb.insn_count;
  let bb = decode_first [ Jcc (NE, 0x3000) ] in
  (match bb.term with
  | Gbb.Tjcc (NE, 0x3000, fall) -> Alcotest.(check bool) "fallthrough" true (fall > 0x1000)
  | _ -> Alcotest.fail "tjcc");
  let bb = decode_first [ Ret ] in
  (match bb.term with Gbb.Tret -> () | _ -> Alcotest.fail "tret");
  let bb = decode_first [ Mov (Reg EAX, Imm 1); Str (Movs, W8, Rep) ] in
  (match bb.term with
  | Gbb.Tinterp pc -> Alcotest.(check bool) "rep is interp-only" true (pc > 0x1000)
  | _ -> Alcotest.fail "tinterp");
  Alcotest.(check int) "rep not counted in block" 1 bb.insn_count;
  let bb = decode_first [ Syscall ] in
  match bb.term with Gbb.Tsyscall 0x1000 -> () | _ -> Alcotest.fail "tsyscall"

(* ------------------------------------------------------------------ *)
(* Superblocks: unrolled counted loop vs interpreter                   *)
(* ------------------------------------------------------------------ *)

let test_unrolled_loop_correct () =
  List.iter
    (fun count ->
      let a = Asm.create ~base:0x1000 () in
      Asm.insn a (Mov (Reg EAX, Imm 0));
      Asm.insn a (Mov (Reg ECX, Imm count));
      Asm.label a "head";
      Asm.insn a (Alu (Add, Reg EAX, Reg ECX));
      Asm.insn a (Dec (Reg ECX));
      Asm.jcc a NE "head";
      Asm.insn a Halt;
      let p = Asm.assemble a in
      (* reference *)
      let r = Interp_ref.boot ~seed:0 p in
      ignore (Interp_ref.run_to_halt r);
      (* superblock path: evaluate the region, chasing self re-entries *)
      let cpu, mem = Loader.boot p in
      Cpu.set cpu EAX 0;
      Cpu.set cpu ECX count;
      let head = Program.symbol p "head" in
      cpu.eip <- head;
      let tolmem = Tolmem.create (copy_memory mem) in
      let profile = Profile.create tolmem in
      let sb =
        Regiongen.build_superblock Config.default profile (Step.icache_create ()) mem
          ~head_pc:head ~use_asserts:true ~use_mem_speculation:true
      in
      Alcotest.(check bool) "loop was unrolled" true sb.unrolled;
      let guard = ref 0 in
      let rec chase () =
        incr guard;
        if !guard > 10000 then Alcotest.fail "runaway loop";
        match Exec.run sb.region cpu mem with
        | Exec.Exited (_, pc) when pc = head -> chase ()
        | Exec.Exited (_, _) -> ()
        | Exec.Assert_failed -> Alcotest.fail "assert failed in unrolled loop"
        | Exec.Alias_failed -> Alcotest.fail "alias failure in unrolled loop"
      in
      chase ();
      Alcotest.(check int)
        (Printf.sprintf "sum for count=%d" count)
        (Cpu.get r.cpu EAX) (Cpu.get cpu EAX))
    [ 1; 2; 3; 4; 5; 7; 8; 64; 100; 101 ]

(* ------------------------------------------------------------------ *)
(* Code cache                                                          *)
(* ------------------------------------------------------------------ *)

let fresh_cache () =
  let mem = Memory.create `Fault in
  let tolmem = Tolmem.create mem in
  let stats = Stats.create () in
  (Codecache.create Config.default tolmem stats, stats)

let simple_region_ir pc : Regionir.t =
  {
    entry_pc = pc;
    mode = `Super;
    body =
      [|
        Ir.Iget (0, EAX);
        Ir.Ibini (Add, 1, 0, 1);
        Ir.Iput (EAX, 1);
        Ir.Iexit { target = Ir.Xdirect (pc + 5); retired = 1; prefer_bb = false; edge = None };
      |];
    prof = None;
    guest_len = 1;
  }

let test_codecache_insert_find () =
  let cc, _ = fresh_cache () in
  let r = Codecache.insert cc Config.default (simple_region_ir 0x1000) in
  Alcotest.(check bool) "found" true
    (match Codecache.find cc 0x1000 with Some x -> x == r | None -> false);
  Alcotest.(check bool) "resolve by base" true
    (match Codecache.resolve_base cc r.base with Some x -> x == r | None -> false);
  Alcotest.(check bool) "absent pc" true (Codecache.find cc 0x9999 = None);
  Alcotest.(check int) "region count" 1 (Codecache.region_count cc)

let test_codecache_invalidate_unchains () =
  let cc, _ = fresh_cache () in
  let a = Codecache.insert cc Config.default (simple_region_ir 0x1000) in
  let b = Codecache.insert cc Config.default (simple_region_ir 0x2000) in
  let exit_a =
    match Darco_host.Code.exit_of a.code.(Array.length a.code - 1) with
    | Some e -> e
    | None -> Alcotest.fail "no exit"
  in
  Codecache.chain cc exit_a b;
  Alcotest.(check bool) "chained" true
    (match exit_a.chain with Some x -> x == b | None -> false);
  Codecache.invalidate cc b;
  Alcotest.(check bool) "unchained" true (exit_a.chain = None);
  Alcotest.(check bool) "gone" true (Codecache.find cc 0x2000 = None);
  Alcotest.(check bool) "invalidated" true b.invalidated

let test_codecache_flush () =
  let cc, stats = fresh_cache () in
  ignore (Codecache.insert cc Config.default (simple_region_ir 0x1000));
  ignore (Codecache.insert cc Config.default (simple_region_ir 0x2000));
  Codecache.flush cc;
  Alcotest.(check int) "empty" 0 (Codecache.region_count cc);
  Alcotest.(check int) "flush counted" 1 stats.code_cache_flushes;
  Alcotest.(check bool) "find misses" true (Codecache.find cc 0x1000 = None)

let test_codecache_capacity_flush () =
  let mem = Memory.create `Fault in
  let tolmem = Tolmem.create mem in
  let stats = Stats.create () in
  let tiny = { Config.default with code_cache_capacity = 12 } in
  let cc = Codecache.create tiny tolmem stats in
  ignore (Codecache.insert cc tiny (simple_region_ir 0x1000));
  ignore (Codecache.insert cc tiny (simple_region_ir 0x2000));
  ignore (Codecache.insert cc tiny (simple_region_ir 0x3000));
  Alcotest.(check bool) "flushes happened" true (stats.code_cache_flushes > 0)

let test_ibtc_fill_and_purge () =
  let cc, _ = fresh_cache () in
  let r = Codecache.insert cc Config.default (simple_region_ir 0x1234) in
  Codecache.ibtc_fill cc ~guest_pc:0x1234 r;
  (* entry is observable to inline host code through co-designed memory *)
  Codecache.invalidate cc r;
  (* after invalidation the entry must not resolve the dead base *)
  Alcotest.(check bool) "base unresolvable" true (Codecache.resolve_base cc r.base = None)

let test_superblock_shadows_bb () =
  let cc, _ = fresh_cache () in
  let bb = Codecache.insert cc Config.default { (simple_region_ir 0x1000) with mode = `Bb } in
  let sb = Codecache.insert cc Config.default (simple_region_ir 0x1000) in
  Alcotest.(check bool) "super preferred" true
    (match Codecache.find cc 0x1000 with Some x -> x == sb | None -> false);
  Alcotest.(check bool) "bb on request" true
    (match Codecache.find cc ~prefer_bb:true 0x1000 with Some x -> x == bb | None -> false)

let () =
  Alcotest.run "tol"
    [
      ("differential", [ QCheck_alcotest.to_alcotest prop_differential ]);
      ( "optimizer",
        [
          Alcotest.test_case "constant folding" `Quick test_const_folding;
          Alcotest.test_case "dce removes dead" `Quick test_dce_removes_dead;
          Alcotest.test_case "dce keeps stores" `Quick test_dce_keeps_stores;
          Alcotest.test_case "cse" `Quick test_cse_dedups;
          Alcotest.test_case "store forwarding" `Quick test_rle_forwards_store;
          Alcotest.test_case "rle aliasing" `Quick test_rle_respects_aliasing;
        ] );
      ( "translate",
        [
          Alcotest.test_case "branch fusion" `Quick test_branch_fusion_avoids_mkfl;
          Alcotest.test_case "dead flags dropped" `Quick test_dead_flags_not_materialized;
        ] );
      ("regalloc", [ Alcotest.test_case "spill correctness" `Quick test_regalloc_spills_correctly ]);
      ("gbb", [ Alcotest.test_case "terminators" `Quick test_gbb_terminators ]);
      ("superblock", [ Alcotest.test_case "unrolled loop" `Quick test_unrolled_loop_correct ]);
      ( "codecache",
        [
          Alcotest.test_case "insert/find" `Quick test_codecache_insert_find;
          Alcotest.test_case "invalidate unchains" `Quick test_codecache_invalidate_unchains;
          Alcotest.test_case "flush" `Quick test_codecache_flush;
          Alcotest.test_case "capacity flush" `Quick test_codecache_capacity_flush;
          Alcotest.test_case "ibtc purge" `Quick test_ibtc_fill_and_purge;
          Alcotest.test_case "superblock shadows bb" `Quick test_superblock_shadows_bb;
        ] );
    ]
