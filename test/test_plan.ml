(* The adaptive-sampling planner and the machinery it rides on: the
   binary-search checkpoint index (against the fold it replaced), the
   snapshot phase marker, round/stop behavior on synthetic workloads, and
   the streaming sweep path producing the same document as the one-shot
   path it generalizes. *)

open Darco_sampling
module Plan = Darco_sampling.Plan
module J = Darco_obs.Jsonx

let build name = (Darco_workloads.Registry.find name).build ~scale:1 ()

(* --- the checkpoint index ---------------------------------------------- *)

(* The O(n) fold [Driver.nearest] replaced, verbatim: latest checkpoint at
   or before the target, first list element among equals, earliest
   checkpoint when none qualifies. *)
let reference_nearest (checkpoints : Driver.checkpoint list) target =
  match
    List.fold_left
      (fun best (ck : Driver.checkpoint) ->
        if ck.Driver.at <= target then
          match best with
          | Some (b : Driver.checkpoint) when b.Driver.at >= ck.Driver.at ->
            best
          | _ -> Some ck
        else best)
      None checkpoints
  with
  | Some ck -> ck
  | None -> (
    match checkpoints with
    | ck :: _ -> ck
    | [] -> invalid_arg "reference_nearest: no checkpoints")

(* One cheap shared snapshot: [nearest] only compares [at], so every
   synthetic checkpoint can reuse the same image. *)
let shared_snapshot =
  lazy
    (let ir = Darco_guest.Interp_ref.boot ~seed:3 (build "continuous") in
     Darco_guest.Interp_ref.run_until ir 2_000;
     Snapshot.capture_reference ir)

let test_nearest_matches_fold () =
  let snapshot = Lazy.force shared_snapshot in
  let gen =
    QCheck.make
      ~print:(fun (ats, t) ->
        Printf.sprintf "ats=[%s] target=%d"
          (String.concat ";" (List.map string_of_int ats))
          t)
      QCheck.Gen.(
        pair
          (map
             (fun l -> List.sort_uniq compare l)
             (list_size (int_range 1 40) (int_bound 500)))
          (int_bound 600))
  in
  let prop (ats, target) =
    let checkpoints =
      List.map (fun at -> { Driver.at; snapshot }) ats
    in
    let want = reference_nearest checkpoints target in
    Driver.nearest checkpoints target == want
    && Driver.nearest_ix (Driver.index_of checkpoints) target == want
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:500
       ~name:"binary-search nearest matches the reference fold" gen prop)

let test_index_rejects_empty () =
  (match Driver.index_of [] with
  | _ -> Alcotest.fail "index_of accepted an empty checkpoint list"
  | exception Invalid_argument _ -> ());
  match Driver.nearest [] 0 with
  | _ -> Alcotest.fail "nearest accepted an empty checkpoint list"
  | exception Invalid_argument _ -> ()

(* --- the phase marker --------------------------------------------------- *)

let test_guest_eip () =
  let snap = Lazy.force shared_snapshot in
  let eip = Snapshot.guest_eip snap in
  (* the prefix decode must agree with a full restore *)
  let restored = Snapshot.restore_reference snap in
  Alcotest.(check int) "prefix decode matches the restored CPU"
    restored.Darco_guest.Interp_ref.cpu.Darco_guest.Cpu.eip eip;
  (* and survive the wire *)
  Alcotest.(check int) "stable across serialization" eip
    (Snapshot.guest_eip (Snapshot.of_string (Snapshot.to_string snap)))

(* --- the planner on synthetic workloads -------------------------------- *)

(* A two-phase program: a steady phase (every window measures the same
   IPC) and a noisy one.  [measure] is the deterministic "simulator". *)
let steady_offsets = List.init 20 (fun i -> i * 100)
let noisy_offsets = List.init 20 (fun i -> 10_000 + (i * 100))
let phase_of off = if off < 10_000 then 0 else 1

let measure off =
  if phase_of off = 0 then 1.0
  else 1.1 +. (0.05 *. sin (float_of_int off))

(* Drive a planner to its stop against [measure], returning the rounds
   (each a list of offsets, in dispatch-priority order). *)
let drive plan =
  let rounds = ref [] in
  let continue = ref true in
  while !continue do
    match Plan.next plan with
    | [] -> continue := false
    | chosen ->
      rounds := chosen :: !rounds;
      Plan.record plan (List.map (fun off -> (off, measure off)) chosen)
  done;
  List.rev !rounds

let adaptive_cfg =
  { Plan.default with Plan.ci_target = 0.03; round_size = 4 }

let test_adaptive_converges_early () =
  let candidates = steady_offsets @ noisy_offsets in
  let plan =
    Plan.create adaptive_cfg ~candidates ~phase_of
  in
  let rounds = drive plan in
  Alcotest.(check bool) "stopped on the confidence target" true
    (Plan.stopped plan = Some Plan.Ci_target);
  Alcotest.(check bool) "ci target met" true (Plan.ci_target_met plan);
  (* the acceptance bar: at least 30% fewer windows than the fixed-stride
     sweep of every candidate *)
  let total = List.length candidates in
  Alcotest.(check bool)
    (Printf.sprintf "early exit saves >= 30%% (%d of %d windows)"
       (Plan.completed plan) total)
    true
    (float_of_int (Plan.completed plan) <= 0.7 *. float_of_int total);
  Alcotest.(check int) "rounds recorded" (List.length rounds)
    (Plan.rounds plan)

let test_adaptive_steers_to_variance () =
  (* no early exit: let the allocation run long enough to show its hand *)
  let plan =
    Plan.create
      { adaptive_cfg with Plan.ci_target = 0.0; max_windows = 16 }
      ~candidates:(steady_offsets @ noisy_offsets)
      ~phase_of
  in
  let chosen = List.concat (drive plan) in
  Alcotest.(check bool) "stopped on the budget" true
    (Plan.stopped plan = Some Plan.Budget);
  let in_phase p = List.length (List.filter (fun o -> phase_of o = p) chosen) in
  Alcotest.(check bool)
    (Printf.sprintf "noisy phase out-sampled the steady one (%d vs %d)"
       (in_phase 1) (in_phase 0))
    true
    (in_phase 1 > in_phase 0);
  (* the predictor prices each stratum near its sample mean *)
  Alcotest.(check bool) "steady-phase prediction near 1.0" true
    (abs_float (Plan.predict plan 50 -. 1.0) < 0.05);
  Alcotest.(check bool) "noisy-phase prediction near 1.1" true
    (abs_float (Plan.predict plan 10_050 -. 1.1) < 0.1)

let test_planner_determinism () =
  let candidates = steady_offsets @ noisy_offsets in
  let run () =
    let plan = Plan.create adaptive_cfg ~candidates ~phase_of in
    drive plan
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical round sequences" true (a = b);
  (* recording a round's results in a scrambled order must not change any
     later decision: rounds are the determinism barrier *)
  let plan = Plan.create adaptive_cfg ~candidates ~phase_of in
  let rounds = ref [] in
  let continue = ref true in
  while !continue do
    match Plan.next plan with
    | [] -> continue := false
    | chosen ->
      rounds := chosen :: !rounds;
      Plan.record plan
        (List.rev_map (fun off -> (off, measure off)) chosen)
  done;
  Alcotest.(check bool) "completion order does not perturb the plan" true
    (List.rev !rounds = a)

let test_fixed_plan_order_and_stops () =
  let candidates = [ 300; 100; 200; 400; 500 ] in
  let plan =
    Plan.create
      { Plan.default with Plan.kind = Plan.Fixed; ci_target = 0.0; round_size = 2 }
      ~candidates ~phase_of:(fun _ -> 0)
  in
  let rounds = drive plan in
  Alcotest.(check bool) "ascending offsets, round_size at a time" true
    (rounds = [ [ 100; 200 ]; [ 300; 400 ]; [ 500 ] ]);
  Alcotest.(check bool) "ran out of candidates" true
    (Plan.stopped plan = Some Plan.Exhausted);
  Alcotest.(check string) "stop reasons have stable names" "exhausted"
    (Plan.stop_reason Plan.Exhausted);
  (* a window budget cuts the sweep short *)
  let plan =
    Plan.create
      { Plan.default with Plan.kind = Plan.Fixed; ci_target = 0.0;
        round_size = 2; max_windows = 3 }
      ~candidates ~phase_of:(fun _ -> 0)
  in
  Alcotest.(check bool) "budget truncates the rounds" true
    (drive plan = [ [ 100; 200 ]; [ 300 ] ]);
  Alcotest.(check bool) "stopped on the budget" true
    (Plan.stopped plan = Some Plan.Budget)

(* --- the streaming sweep path ------------------------------------------ *)

let render_result (r : Sweep.result) =
  r.Sweep.label ^ " => "
  ^ (match r.Sweep.outcome with
    | Sweep.Ok j -> J.to_string j
    | Sweep.Failed e -> "FAILED " ^ e)

let small_sweep () =
  let program = build "continuous" in
  let store = Store.create () in
  let checkpoints =
    Driver.functional_checkpoints ~seed:7 ~interval:10_000 ~horizon:40_000
      program
  in
  let mk off =
    Work.of_window_stored ~store ~checkpoints
      ~label:(Printf.sprintf "continuous@%d" off)
      ~offset:off ~window:2_000 ~warmup:1_000
  in
  (store, [ 8_000; 16_000; 24_000 ], mk)

(* A fixed plan through [run_stream] on the serial backend must rebuild
   the one-shot fork sweep's document byte for byte — the degenerate plan
   really is the existing pipeline. *)
let test_fixed_stream_matches_oneshot () =
  let store, offsets, mk = small_sweep () in
  let report rows =
    J.to_string
      (Report.sweep_json ~benchmark:"continuous" ~seed:7 ~interval:10_000
         ~window:2_000 ~warmup:1_000 rows)
        .Report.doc
  in
  let oneshot =
    report
      (List.combine offsets
         (Sweep.run (Sweep.Backend.local ~store ~jobs:2 ()) (List.map mk offsets)))
  in
  let plan =
    Plan.create
      { Plan.default with Plan.kind = Plan.Fixed; ci_target = 0.0; round_size = 2 }
      ~candidates:offsets ~phase_of:(fun _ -> 0)
  in
  let pairs =
    Sweep.run_stream
      (Sweep.Backend.serial ~store ())
      ~next:(fun _ _ -> List.map mk (Plan.next plan))
  in
  let streamed =
    report (List.map (fun ((w : Work.t), r) -> (w.Work.offset, r)) pairs)
  in
  Alcotest.(check string) "streamed fixed plan byte-identical to one-shot"
    oneshot streamed

(* The serial backend is the determinism reference: same results, same
   rendering as the fork pool, without forking. *)
let test_serial_identical_to_fork () =
  let store, offsets, mk = small_sweep () in
  let works = List.map mk offsets in
  let via_fork = Sweep.run (Sweep.Backend.local ~store ~jobs:2 ()) works in
  let via_serial = Sweep.run (Sweep.Backend.serial ~store ()) works in
  Alcotest.(check (list string)) "serial renders identically to fork"
    (List.map render_result via_fork)
    (List.map render_result via_serial)

(* An adaptive sweep chooses the same windows and produces byte-identical
   documents on every backend: rounds are the barrier, so completion
   order inside a round cannot leak into the plan. *)
let test_adaptive_backend_independent () =
  let store, _, mk = small_sweep () in
  let candidates = List.init 12 (fun i -> 4_000 + (i * 3_000)) in
  let sweep backend =
    let plan =
      Plan.create
        { Plan.default with Plan.ci_target = 0.10; round_size = 3 }
        ~candidates ~phase_of:(fun off -> off / 10_000)
    in
    let recorded = ref 0 in
    let pairs =
      Sweep.run_stream backend
        ~next:(fun _ completed ->
          let fresh = List.filteri (fun i _ -> i >= !recorded) completed in
          recorded := List.length completed;
          Plan.record plan
            (List.filter_map
               (fun ((w : Work.t), (r : Sweep.result)) ->
                 match r.Sweep.outcome with
                 | Sweep.Ok json -> (
                   match J.member "ipc" json with
                   | Some (J.Float f) -> Some (w.Work.offset, f)
                   | _ -> None)
                 | Sweep.Failed _ -> None)
               fresh);
          List.map mk (Plan.next plan))
    in
    J.to_string
      (Report.sweep_json ~benchmark:"continuous" ~seed:7 ~interval:10_000
         ~window:2_000 ~warmup:1_000
         ~plan:
           {
             Report.plan_name = "adaptive";
             windows_used = List.length pairs;
             ci_target = 0.10;
             ci_target_met = Plan.ci_target_met plan;
             rounds = Plan.rounds plan;
           }
         (List.map (fun ((w : Work.t), r) -> (w.Work.offset, r)) pairs))
        .Report.doc
  in
  let serial = sweep (Sweep.Backend.serial ~store ()) in
  let fork = sweep (Sweep.Backend.local ~store ~jobs:3 ()) in
  let domains = sweep (Sweep.Backend.domains ~store ~jobs:3 ()) in
  Alcotest.(check string) "serial and fork byte-identical" serial fork;
  Alcotest.(check string) "serial and domains byte-identical" serial domains;
  (* and the document carries the planner's summary *)
  let doc = J.parse serial in
  Alcotest.(check bool) "plan recorded in the document" true
    (J.member "plan" doc = Some (J.String "adaptive"));
  match J.member "windows_used" doc with
  | Some (J.Int n) ->
    Alcotest.(check bool) "early exit used fewer windows" true
      (n < List.length candidates)
  | _ -> Alcotest.fail "windows_used missing from the document"

let () =
  Alcotest.run "plan"
    [
      ( "index",
        [
          Alcotest.test_case "nearest matches the fold" `Quick
            test_nearest_matches_fold;
          Alcotest.test_case "empty index rejected" `Quick
            test_index_rejects_empty;
          Alcotest.test_case "guest_eip phase marker" `Quick test_guest_eip;
        ] );
      ( "planner",
        [
          Alcotest.test_case "adaptive converges early" `Quick
            test_adaptive_converges_early;
          Alcotest.test_case "variance steers allocation" `Quick
            test_adaptive_steers_to_variance;
          Alcotest.test_case "deterministic rounds" `Quick
            test_planner_determinism;
          Alcotest.test_case "fixed plan order and stops" `Quick
            test_fixed_plan_order_and_stops;
        ] );
      ( "stream",
        [
          Alcotest.test_case "fixed stream matches one-shot" `Quick
            test_fixed_stream_matches_oneshot;
          Alcotest.test_case "serial backend identical to fork" `Quick
            test_serial_identical_to_fork;
          Alcotest.test_case "adaptive backend-independent" `Quick
            test_adaptive_backend_independent;
        ] );
    ]
