(* The campaign service, tested against real processes: the [serve] loop
   runs in this process (so its bus is observable), real client processes
   are forked against its ephemeral port, and the artifact library is
   driven both through the service and directly — including the cold
   restart and corruption paths the crash-safety story depends on. *)

module Campaign = Darco_serve.Campaign
module Library = Darco_serve.Library
module Client = Darco_serve.Client
module Serve = Darco_serve.Serve
module Sweep = Darco_sampling.Sweep
module Work = Darco_sampling.Work
module Store = Darco_sampling.Store
module Driver = Darco_sampling.Driver
module Report = Darco_sampling.Report
module B = Darco_sampling.Buf
module Wire = Darco_dispatch.Wire
module Worker = Darco_dispatch.Worker
module Event = Darco_obs.Event
module J = Darco_obs.Jsonx

let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

(* --- plumbing ---------------------------------------------------------- *)

let with_temp_dir f =
  let dir = Filename.temp_file "darco_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let collecting_bus () =
  let events = ref [] in
  let bus = Darco_obs.Bus.create () in
  Darco_obs.Bus.attach bus ~name:"collect" (fun ~at:_ ev -> events := ev :: !events);
  (bus, events)

let count events p = List.length (List.filter p !events)

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* Fork a client process that learns the server's kernel-assigned port
   through a pipe (written by [serve]'s [ready] callback), runs [job]
   against it, and exits.  Results come back through files — the child
   must not touch Alcotest state. *)
let fork_client (r, w) job =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    Unix.close w;
    let buf = Bytes.create 16 in
    let n = Unix.read r buf 0 16 in
    Unix.close r;
    let port = int_of_string (String.trim (Bytes.sub_string buf 0 n)) in
    (try job { Darco_dispatch.host = "127.0.0.1"; port } with _ -> ());
    Unix._exit 0
  | pid ->
    Unix.close r;
    pid

(* The [ready] callback: announce the bound port to every waiting child. *)
let announce writers sa =
  let port = match sa with Unix.ADDR_INET (_, p) -> p | _ -> 0 in
  let line = Bytes.of_string (string_of_int port ^ "\n") in
  List.iter
    (fun w ->
      ignore (Unix.write w line 0 (Bytes.length line));
      Unix.close w)
    writers

(* Same worker-daemon spawner as test_dispatch: ephemeral port reported
   through a pipe once the daemon is actually listening.  [exec] lets a
   test slow the worker down to hold a campaign observably in flight. *)
let spawn_worker ?exec () =
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    Unix.close r;
    (try
       Worker.serve ~quiet:true ?exec
         ~ready:(fun sa ->
           let port = match sa with Unix.ADDR_INET (_, p) -> p | _ -> 0 in
           let line = Bytes.of_string (string_of_int port ^ "\n") in
           ignore (Unix.write w line 0 (Bytes.length line));
           Unix.close w)
         ~host:"127.0.0.1" ~port:0 ()
     with _ -> ());
    Unix._exit 0
  | pid ->
    Unix.close w;
    let buf = Bytes.create 16 in
    let n = Unix.read r buf 0 16 in
    Unix.close r;
    let port = int_of_string (String.trim (Bytes.sub_string buf 0 n)) in
    (pid, { Darco_dispatch.host = "127.0.0.1"; port })

let reap pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] pid)

let wait pid = ignore (Unix.waitpid [] pid)

(* The shared campaign: same physics workload and geometry as the
   dispatcher tests, so the windows are cheap and deterministic. *)
let spec1 =
  Campaign.normalize
    {
      Campaign.bench = "continuous";
      scale = 1;
      seed = 7;
      input = None;
      interval = 10_000;
      horizon = 40_000;
      offsets = [ 8_000; 16_000; 24_000 ];
      window = 2_000;
      warmup = 1_000;
      ci_target = None;
    }

let spec2 = Campaign.normalize { spec1 with offsets = [ 12_000; 20_000 ] }

(* What [darco sample --json] computes for [spec1] — the byte-identity
   reference for everything the service returns. *)
let expected_doc =
  lazy
    (let program =
       (Darco_workloads.Registry.find "continuous").build ~scale:1 ()
     in
     let checkpoints =
       Driver.functional_checkpoints ~seed:7 ~interval:10_000 ~horizon:40_000
         program
     in
     let store = Store.create () in
     let works =
       List.map
         (fun off ->
           Work.of_window_stored ~store ~checkpoints
             ~label:(Printf.sprintf "continuous@%d" off)
             ~offset:off ~window:2_000 ~warmup:1_000)
         spec1.Campaign.offsets
     in
     let results = Sweep.run (Sweep.Backend.local ~store ~jobs:2 ()) works in
     let rep =
       Report.sweep_json ~benchmark:"continuous" ~seed:7 ~interval:10_000
         ~window:2_000 ~warmup:1_000
         (List.combine spec1.Campaign.offsets results)
     in
     J.to_string rep.Report.doc)

(* --- the campaign codec ------------------------------------------------ *)

let test_campaign_codec () =
  let full =
    {
      Campaign.bench = "429.mcf";
      scale = 3;
      seed = 99;
      input = Some "line one\nline two\x00binary";
      interval = 5_000;
      horizon = 123_456;
      offsets = [ 10_000; 20_000; 30_000 ];
      window = 1_000;
      warmup = 500;
      ci_target = None;
    }
  in
  Alcotest.(check bool) "roundtrip is the identity" true
    (Campaign.of_string (Campaign.to_string full) = full);
  Alcotest.(check bool) "roundtrip without input" true
    (Campaign.of_string (Campaign.to_string spec1) = spec1);
  (* a confidence target bumps the frame to version 2 and survives the
     roundtrip; its absence keeps the version-1 bytes *)
  let planned = { full with Campaign.ci_target = Some 0.02 } in
  Alcotest.(check bool) "roundtrip with a ci target" true
    (Campaign.of_string (Campaign.to_string planned) = planned);
  Alcotest.(check bool) "v2 frame differs from v1" true
    (Campaign.to_string planned <> Campaign.to_string full);
  (* normalization: the flag discipline of [darco sample] *)
  let messy =
    Campaign.normalize
      { full with offsets = [ 30_000; 10_000; 10_000; 20_000 ]; horizon = 1 }
  in
  Alcotest.(check (list int)) "offsets sorted and deduplicated"
    [ 10_000; 20_000; 30_000 ] messy.Campaign.offsets;
  Alcotest.(check int) "horizon stretched over the last window" 31_000
    messy.Campaign.horizon;
  (* malformed specs are refused, never misread *)
  let corrupt s =
    match Campaign.of_string s with
    | _ -> Alcotest.fail "accepted a malformed campaign"
    | exception B.Corrupt _ -> ()
  in
  let enc = Campaign.to_string full in
  corrupt "";
  corrupt ("JUNK" ^ String.sub enc 4 (String.length enc - 4));
  corrupt (String.sub enc 0 (String.length enc - 3));
  corrupt (enc ^ "!");
  corrupt (Campaign.to_string { full with scale = 0 });
  corrupt (Campaign.to_string { full with interval = 0 });
  corrupt (Campaign.to_string { full with window = 0 });
  corrupt (Campaign.to_string { full with warmup = -1 });
  corrupt (Campaign.to_string { full with ci_target = Some 0.0 });
  corrupt (Campaign.to_string { full with ci_target = Some (-0.1) })

let test_campaign_digests () =
  let a = spec1 in
  (* the config digest pins a window's bytes: checkpointing parameters and
     the offset list must not perturb it, or campaigns stop sharing *)
  Alcotest.(check string) "config digest ignores interval/horizon/offsets"
    (Campaign.config_digest a)
    (Campaign.config_digest
       { a with interval = 777; horizon = 999_999; offsets = [ 1 ] });
  Alcotest.(check bool) "config digest sees the window length" true
    (Campaign.config_digest { a with window = 3_000 }
    <> Campaign.config_digest a);
  Alcotest.(check bool) "config digest sees the seed" true
    (Campaign.config_digest { a with seed = 8 } <> Campaign.config_digest a);
  (* the checkpoint digest pins a fast-forward, nothing about windows *)
  Alcotest.(check string) "ckpt digest ignores window/warmup/offsets"
    (Campaign.ckpt_digest a)
    (Campaign.ckpt_digest { a with window = 9; warmup = 0; offsets = [] });
  Alcotest.(check bool) "ckpt digest sees the interval" true
    (Campaign.ckpt_digest { a with interval = 5_000 } <> Campaign.ckpt_digest a);
  (* the input rendering is injective: empty input is not absent input *)
  Alcotest.(check bool) "empty input distinct from no input" true
    (Campaign.config_digest { a with input = Some "" }
    <> Campaign.config_digest a);
  (* the confidence target never reaches a digest: an adaptive campaign's
     windows must hit the exhaustive campaign's library entries *)
  Alcotest.(check string) "config digest ignores the ci target"
    (Campaign.config_digest a)
    (Campaign.config_digest { a with ci_target = Some 0.05 });
  Alcotest.(check string) "ckpt digest ignores the ci target"
    (Campaign.ckpt_digest a)
    (Campaign.ckpt_digest { a with ci_target = Some 0.05 })

(* --- the artifact library, driven directly ----------------------------- *)

let a_key =
  {
    Library.bench = "continuous";
    cfg = Store.digest "some config";
    snap = Store.digest "some snapshot";
    offset = 8_000;
    window = 2_000;
    warmup = 1_000;
  }

let test_library_windows () =
  with_temp_dir @@ fun dir ->
  let lib = Library.create ~dir () in
  Alcotest.(check (option string)) "empty library misses" None
    (Library.find_window lib a_key);
  let json = "{\"offset\":8000,\"ipc\":1.25}" in
  Library.put_window lib a_key json;
  Library.put_window lib a_key json;
  Alcotest.(check (option string)) "warm hit" (Some json)
    (Library.find_window lib a_key);
  (* a cold open re-reads and re-verifies the file *)
  let cold = Library.create ~dir () in
  Alcotest.(check (option string)) "cold hit, verified" (Some json)
    (Library.find_window cold a_key);
  Alcotest.(check (option string)) "a different offset is a different key"
    None
    (Library.find_window cold { a_key with offset = 16_000 })

let test_library_corruption () =
  with_temp_dir @@ fun dir ->
  let lib = Library.create ~dir () in
  let json = "{\"offset\":8000,\"ipc\":1.25}" in
  Library.put_window lib a_key json;
  let path = Filename.concat dir (Library.key_id a_key ^ ".dart") in
  (* one flipped payload byte must surface as Corrupt on a cold read *)
  let bytes = Bytes.of_string (read_file path) in
  let last = Bytes.length bytes - 1 in
  Bytes.set bytes last (Char.chr (Char.code (Bytes.get bytes last) lxor 0xff));
  write_file path (Bytes.to_string bytes);
  let cold = Library.create ~dir () in
  (match Library.find_window cold a_key with
  | _ -> Alcotest.fail "served a tampered window artifact"
  | exception B.Corrupt _ -> ());
  (* a valid artifact copied under the wrong name must also be refused:
     the embedded key is checked against the key looked up *)
  let lib2 = Library.create ~dir:(Filename.concat dir "two") () in
  Library.put_window lib2 a_key json;
  let wrong = { a_key with offset = 24_000 } in
  write_file
    (Filename.concat (Filename.concat dir "two") (Library.key_id wrong ^ ".dart"))
    (read_file
       (Filename.concat (Filename.concat dir "two") (Library.key_id a_key ^ ".dart")));
  let cold2 = Library.create ~dir:(Filename.concat dir "two") () in
  match Library.find_window cold2 wrong with
  | _ -> Alcotest.fail "served a window artifact under the wrong key"
  | exception B.Corrupt _ -> ()

let test_library_checkpoints () =
  with_temp_dir @@ fun dir ->
  let lib = Library.create ~dir () in
  let ck = Campaign.ckpt_digest spec1 in
  Alcotest.(check bool) "empty library has no checkpoint set" true
    (Library.find_checkpoints lib ~bench:"continuous" ~ckpt:ck = None);
  let b0 = "snapshot zero bytes" and b1 = "snapshot one bytes!" in
  let d0 = Store.add (Library.store lib) b0 in
  let d1 = Store.add (Library.store lib) b1 in
  Library.put_checkpoints lib ~bench:"continuous" ~ckpt:ck
    [ (0, d0); (10_000, d1) ];
  Alcotest.(check bool) "set restored in order, bytes verified" true
    (Library.find_checkpoints lib ~bench:"continuous" ~ckpt:ck
    = Some [ (0, b0); (10_000, b1) ]);
  let cold = Library.create ~dir () in
  Alcotest.(check bool) "cold restore identical" true
    (Library.find_checkpoints cold ~bench:"continuous" ~ckpt:ck
    = Some [ (0, b0); (10_000, b1) ]);
  (* an evicted snapshot poisons the whole set: a partial restore would
     silently change warm-up distances, so the set reports absent *)
  Sys.remove (Filename.concat (Filename.concat dir "ckpt") (d1 ^ ".dsnp"));
  let cold2 = Library.create ~dir () in
  Alcotest.(check bool) "set with an evicted snapshot is absent" true
    (Library.find_checkpoints cold2 ~bench:"continuous" ~ckpt:ck = None)

(* --- the wire v4 SUBM frame, against its committed golden bytes -------- *)

let fixture_spec =
  {
    Campaign.bench = "429.mcf";
    scale = 1;
    seed = 42;
    input = None;
    interval = 50_000;
    horizon = 300_000;
    offsets = [ 130_000; 150_000 ];
    window = 25_000;
    warmup = 30_000;
    ci_target = None;
  }

let test_subm_golden () =
  let golden = read_file "fixtures/wire_subm_v4.bin" in
  let msg = Wire.Submit { id = 7; sweep = Campaign.to_string fixture_spec } in
  Alcotest.(check string) "encoder still emits the committed bytes" golden
    (Wire.encode msg);
  (* and the committed bytes still decode to the same submission *)
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  ignore (Unix.write_substring b golden 0 (String.length golden));
  Unix.close b;
  Fun.protect ~finally:(fun () -> Unix.close a) @@ fun () ->
  match Wire.recv ~deadline:(Unix.gettimeofday () +. 10.0) a with
  | Wire.Submit { id; sweep } ->
    Alcotest.(check int) "submission id" 7 id;
    Alcotest.(check bool) "campaign decodes to the fixture spec" true
      (Campaign.of_string sweep = fixture_spec)
  | _ -> Alcotest.fail "golden SUBM frame decoded to something else"

(* --- the service end to end: resubmission, restore, restart ------------ *)

let parse_stats s = Scanf.sscanf s "%d %d %d %d" (fun a b c d -> (a, b, c, d))

let seq_client dir addr =
  let save name s = write_file (Filename.concat dir name) s in
  let submit name spec =
    match Client.submit addr spec with
    | Ok (st, doc) ->
      save (name ^ ".stats")
        (Printf.sprintf "%d %d %d %d" st.Client.done_ st.Client.total
           st.Client.hits st.Client.dispatched);
      save (name ^ ".json") doc
    | Error e -> save (name ^ ".err") e
  in
  submit "first" spec1;
  submit "again" spec1;
  (match Client.status addr with
  | Ok (state, st, _info) ->
    save "status"
      (Printf.sprintf "%s %d %d %d %d" state st.Client.done_ st.Client.total
         st.Client.hits st.Client.dispatched)
  | Error e -> save "status.err" e);
  (match Client.fetch addr spec1 ~offset:8_000 with
  | Ok (Some j) -> save "fetch" j
  | Ok None -> save "fetch.err" "miss"
  | Error e -> save "fetch.err" e);
  (match Client.fetch addr spec1 ~offset:9_999 with
  | Ok None -> save "fetch_miss" "miss"
  | Ok (Some _) -> save "fetch_miss.err" "unexpected hit"
  | Error e -> save "fetch_miss.err" e);
  submit "sibling" spec2

let must_read dir name =
  let path = Filename.concat dir name in
  if Sys.file_exists path then read_file path
  else
    Alcotest.failf "client never wrote %s%s" name
      (let err = Filename.concat dir (Filename.remove_extension name ^ ".err") in
       if Sys.file_exists err then ": " ^ read_file err else "")

let test_serve_resubmit_and_restore () =
  with_temp_dir @@ fun dir ->
  let libdir = Filename.concat dir "lib" in
  let pipe = Unix.pipe () in
  let pid = fork_client pipe (seq_client dir) in
  let bus, events = collecting_bus () in
  Serve.serve ~bus ~quiet:true ~jobs:2 ~credit:2 ~max_submissions:3
    ~ready:(announce [ snd pipe ])
    ~library:libdir ~host:"127.0.0.1" ~port:0 ();
  wait pid;
  (* the first submission dispatched everything, the resubmission nothing *)
  Alcotest.(check (list int)) "first run: 3 windows, all dispatched"
    [ 3; 3; 0; 3 ]
    (let a, b, c, d = parse_stats (must_read dir "first.stats") in
     [ a; b; c; d ]);
  Alcotest.(check (list int)) "resubmission: all hits, zero dispatched"
    [ 3; 3; 3; 0 ]
    (let a, b, c, d = parse_stats (must_read dir "again.stats") in
     [ a; b; c; d ]);
  (* byte-identical to each other AND to what [darco sample --json] says *)
  let doc0 = must_read dir "first.json" in
  Alcotest.(check string) "resubmitted document byte-identical" doc0
    (must_read dir "again.json");
  Alcotest.(check string) "document byte-identical to the local backend"
    (Lazy.force expected_doc) doc0;
  (* the sibling campaign has new windows but the same checkpoint set *)
  Alcotest.(check (list int)) "sibling: new windows dispatched" [ 2; 2; 0; 2 ]
    (let a, b, c, d = parse_stats (must_read dir "sibling.stats") in
     [ a; b; c; d ]);
  (* mid-stream service queries worked *)
  (match String.split_on_char ' ' (must_read dir "status") with
  | state :: done_ :: total :: _ ->
    Alcotest.(check string) "service state" "serving" state;
    Alcotest.(check string) "completed submissions" "2" done_;
    Alcotest.(check string) "admitted submissions" "2" total
  | _ -> Alcotest.fail "malformed status line");
  Alcotest.(check bool) "fetch returned the stored window" true
    (let j = must_read dir "fetch" in
     let sub = "\"offset\":8000" in
     let rec find i =
       i + String.length sub <= String.length j
       && (String.sub j i (String.length sub) = sub || find (i + 1))
     in
     find 0);
  Alcotest.(check string) "fetch of an unknown window is a clean miss" "miss"
    (must_read dir "fetch_miss");
  (* the decisions were all on the bus *)
  Alcotest.(check int) "three submissions observed" 3
    (count events (function Event.Submit _ -> true | _ -> false));
  Alcotest.(check int) "one checkpoint set stored" 1
    (count events (function
      | Event.Artifact_store { key; _ } -> has_prefix "ckpts:" key
      | _ -> false));
  Alcotest.(check bool) "the sibling restored checkpoints from the library"
    true
    (count events (function
       | Event.Artifact_hit { key } -> has_prefix "ckpts:" key
       | _ -> false)
    >= 1);
  Alcotest.(check bool) "three window hits for the resubmission" true
    (count events (function
       | Event.Artifact_hit { key } -> not (has_prefix "ckpts:" key)
       | _ -> false)
    >= 3);
  Alcotest.(check int) "five window artifacts stored" 5
    (count events (function
      | Event.Artifact_store { key; _ } -> not (has_prefix "ckpts:" key)
      | _ -> false));
  (* fair share: every scheduling round honoured the credit *)
  let admits =
    List.filter_map
      (function Event.Admit { units; credit; _ } -> Some (units, credit) | _ -> None)
      !events
  in
  Alcotest.(check bool) "admission rounds observed" true (admits <> []);
  List.iter
    (fun (units, credit) ->
      if units < 1 || units > credit then
        Alcotest.failf "admission round took %d units against credit %d" units
          credit)
    admits;
  Alcotest.(check int) "admitted units equal dispatched units" 5
    (List.fold_left (fun acc (u, _) -> acc + u) 0 admits);
  (* --- restart the service cold on the same library -------------------- *)
  let pipe2 = Unix.pipe () in
  let pid2 =
    fork_client pipe2 (fun addr ->
        match Client.submit addr spec1 with
        | Ok (st, doc) ->
          write_file
            (Filename.concat dir "cold.stats")
            (Printf.sprintf "%d %d %d %d" st.Client.done_ st.Client.total
               st.Client.hits st.Client.dispatched);
          write_file (Filename.concat dir "cold.json") doc
        | Error e -> write_file (Filename.concat dir "cold.err") e)
  in
  Serve.serve ~quiet:true ~jobs:2 ~max_submissions:1
    ~ready:(announce [ snd pipe2 ])
    ~library:libdir ~host:"127.0.0.1" ~port:0 ();
  wait pid2;
  Alcotest.(check (list int)) "after restart: all hits, zero dispatched"
    [ 3; 3; 3; 0 ]
    (let a, b, c, d = parse_stats (must_read dir "cold.stats") in
     [ a; b; c; d ]);
  Alcotest.(check string) "after restart: document still byte-identical" doc0
    (must_read dir "cold.json")

(* --- an adaptive campaign exits early ---------------------------------- *)

(* A wide campaign with a loose confidence target: the planner should
   settle the sweep from a handful of windows and skip the rest, and the
   document should say so. *)
let adaptive_spec =
  Campaign.normalize
    {
      spec1 with
      Campaign.offsets = List.init 16 (fun i -> 2_000 + (i * 2_500));
      ci_target = Some 0.10;
    }

let test_serve_adaptive_campaign () =
  with_temp_dir @@ fun dir ->
  let pipe = Unix.pipe () in
  let pid =
    fork_client pipe (fun addr ->
        match Client.submit addr adaptive_spec with
        | Ok (st, doc) ->
          write_file
            (Filename.concat dir "adaptive.stats")
            (Printf.sprintf "%d %d %d %d" st.Client.done_ st.Client.total
               st.Client.hits st.Client.dispatched);
          write_file (Filename.concat dir "adaptive.json") doc
        | Error e -> write_file (Filename.concat dir "adaptive.err") e)
  in
  let bus, events = collecting_bus () in
  Serve.serve ~bus ~quiet:true ~jobs:2 ~credit:4 ~max_submissions:1
    ~ready:(announce [ snd pipe ])
    ~library:(Filename.concat dir "lib") ~host:"127.0.0.1" ~port:0 ();
  wait pid;
  let total = List.length adaptive_spec.Campaign.offsets in
  let done_, total', _hits, dispatched =
    parse_stats (must_read dir "adaptive.stats")
  in
  Alcotest.(check int) "status reports the full campaign" total total';
  Alcotest.(check bool)
    (Printf.sprintf "early exit measured a strict subset (%d of %d)" done_
       total)
    true
    (done_ > 0 && done_ < total);
  Alcotest.(check bool) "dispatch stopped with the plan" true
    (dispatched <= done_ && dispatched < total);
  (* the document carries the planner verdict *)
  let doc = J.parse (must_read dir "adaptive.json") in
  Alcotest.(check bool) "document is an adaptive plan" true
    (J.member "plan" doc = Some (J.String "adaptive"));
  Alcotest.(check bool) "ci target recorded" true
    (J.member "ci_target" doc = Some (J.Float 0.10));
  (match J.member "windows_used" doc with
  | Some (J.Int n) -> Alcotest.(check int) "windows_used matches status" done_ n
  | _ -> Alcotest.fail "windows_used missing");
  Alcotest.(check bool) "ci target met" true
    (J.member "ci_target_met" doc = Some (J.Bool true));
  (* unmeasured offsets are absent from the rows, not reported as failed *)
  (match J.member "samples" doc with
  | Some (J.List rows) ->
    Alcotest.(check int) "one row per measured window" done_ (List.length rows)
  | _ -> Alcotest.fail "samples missing");
  (* the planner narrated its early exit on the bus *)
  Alcotest.(check bool) "Plan_round observed" true
    (count events (function Event.Plan_round _ -> true | _ -> false) >= 1);
  Alcotest.(check int) "Plan_stop on ci_target" 1
    (count events (function
      | Event.Plan_stop { reason; _ } -> reason = "ci_target"
      | _ -> false))

(* --- two concurrent clients share in-flight work ----------------------- *)

let test_serve_concurrent_sharing () =
  with_temp_dir @@ fun dir ->
  let libdir = Filename.concat dir "lib" in
  let spec =
    Campaign.normalize
      { spec1 with offsets = [ 8_000; 16_000; 24_000; 32_000 ] }
  in
  let p1, a1 = spawn_worker () in
  let p2, a2 = spawn_worker () in
  Fun.protect
    ~finally:(fun () -> reap p1; reap p2)
    (fun () ->
      let client name delay addr =
        if delay > 0.0 then Unix.sleepf delay;
        match Client.submit addr spec with
        | Ok (st, doc) ->
          write_file
            (Filename.concat dir (name ^ ".stats"))
            (Printf.sprintf "%d %d %d %d" st.Client.done_ st.Client.total
               st.Client.hits st.Client.dispatched);
          write_file (Filename.concat dir (name ^ ".json")) doc
        | Error e -> write_file (Filename.concat dir (name ^ ".err")) e
      in
      let pipe1 = Unix.pipe () and pipe2 = Unix.pipe () in
      let pid1 = fork_client pipe1 (client "one" 0.0) in
      let pid2 = fork_client pipe2 (client "two" 0.75) in
      let bus, events = collecting_bus () in
      (* credit 1 keeps scheduling rounds short, so the second submission
         is admitted while the first is still in flight *)
      Serve.serve ~bus ~quiet:true ~workers:[ a1; a2 ] ~credit:1
        ~max_submissions:2
        ~ready:(announce [ snd pipe1; snd pipe2 ])
        ~library:libdir ~host:"127.0.0.1" ~port:0 ();
      wait pid1;
      wait pid2;
      let s1 = parse_stats (must_read dir "one.stats") in
      let s2 = parse_stats (must_read dir "two.stats") in
      let (_, _, h1, d1) = s1 and (_, _, h2, d2) = s2 in
      (* every window ran exactly once, whoever got there first *)
      Alcotest.(check int) "four units dispatched in total" 4 (d1 + d2);
      Alcotest.(check int) "four windows served without dispatch" 4 (h1 + h2);
      Alcotest.(check int) "the staggered client dispatched nothing" 0 d2;
      Alcotest.(check string) "both clients got byte-identical documents"
        (must_read dir "one.json") (must_read dir "two.json");
      Alcotest.(check int) "both submissions observed" 2
        (count events (function Event.Submit _ -> true | _ -> false));
      Alcotest.(check bool) "the shared windows were observed as hits" true
        (count events (function
           | Event.Artifact_hit { key } -> not (has_prefix "ckpts:" key)
           | _ -> false)
        >= 4))

(* --- live telemetry end to end ----------------------------------------- *)

module Top = Darco_serve.Top
module Reg = Darco_obs.Registry
module Version = Darco_util.Version

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let geti k j = Option.value ~default:(-1) (Option.bind (J.member k j) J.to_int)
let gets k j = Option.value ~default:"" (Option.bind (J.member k j) J.to_str)
let getl k j = match J.member k j with Some (J.List l) -> l | _ -> []

(* A campaign long enough to still be in flight when the probe looks:
   ten wide windows, dispatched one per round ([credit 1]). *)
let spec_slow =
  Campaign.normalize
    {
      spec1 with
      Campaign.offsets = List.init 10 (fun i -> 2_000 + (i * 2_000));
      window = 120_000;
    }

(* A probe client: poll [darco top]'s exact fetch until the campaign is
   visibly in flight, persist that one consistent view (top text, METR
   snapshot, HLTH document all from the same instant), ask for STAT, and
   only then submit the second campaign that lets the service exit. *)
let telemetry_probe dir addr =
  let save name s = write_file (Filename.concat dir name) s in
  let rec grab tries =
    match Top.fetch addr with
    | Ok v when tries = 0 || contains (Top.render v) "continuous" -> Ok v
    | Error e when tries = 0 -> Error e
    | _ ->
      Unix.sleepf 0.05;
      grab (tries - 1)
  in
  (match grab 100 with
  | Error e -> save "probe.err" e
  | Ok v ->
    save "top.txt" (Top.render v);
    save "scrape.json" (J.to_string (Reg.to_json v.Top.metrics));
    save "scrape.prom" (Reg.exposition v.Top.metrics);
    save "health.json" (J.to_string v.Top.health));
  (match Client.status addr with
  | Ok (state, _, info) ->
    save "status.txt"
      (Printf.sprintf "%s %d %s" state info.Client.uptime_s
         info.Client.version)
  | Error e -> save "status.err" e);
  match Client.submit addr spec1 with
  | Ok (st, doc) ->
    save "work.stats"
      (Printf.sprintf "%d %d %d %d" st.Client.done_ st.Client.total
         st.Client.hits st.Client.dispatched);
    save "work.json" doc
  | Error e -> save "work.err" e

let test_serve_telemetry () =
  with_temp_dir @@ fun dir ->
  let metrics_file = Filename.concat dir "metrics.prom" in
  let wp, waddr = spawn_worker () in
  Fun.protect ~finally:(fun () -> reap wp) @@ fun () ->
  let pipe1 = Unix.pipe () and pipe2 = Unix.pipe () in
  let slow_pid =
    fork_client pipe1 (fun addr ->
        match Client.submit addr spec_slow with
        | Ok (st, _) ->
          write_file
            (Filename.concat dir "slow.stats")
            (Printf.sprintf "%d %d %d %d" st.Client.done_ st.Client.total
               st.Client.hits st.Client.dispatched)
        | Error e -> write_file (Filename.concat dir "slow.err") e)
  in
  let probe_pid = fork_client pipe2 (telemetry_probe dir) in
  let bus, _events = collecting_bus () in
  Serve.serve ~bus ~quiet:true ~workers:[ waddr ] ~credit:1 ~max_submissions:2
    ~metrics_file ~metrics_interval:0.2
    ~ready:(announce [ snd pipe1; snd pipe2 ])
    ~library:(Filename.concat dir "lib") ~host:"127.0.0.1" ~port:0 ();
  wait slow_pid;
  wait probe_pid;
  (* the slow campaign measured everything *)
  Alcotest.(check (list int)) "slow campaign settled every window"
    [ 10; 10; 0; 10 ]
    (let a, b, c, d = parse_stats (must_read dir "slow.stats") in
     [ a; b; c; d ]);
  (* the campaign itself is untouched by telemetry: byte-identical to
     what [darco sample --json] computes with no registry anywhere *)
  Alcotest.(check string) "document byte-identical with telemetry on"
    (Lazy.force expected_doc)
    (must_read dir "work.json");
  (* the probe's single consistent view, taken mid-campaign *)
  let top = must_read dir "top.txt" in
  Alcotest.(check bool) "top names the build" true
    (contains top ("darco serve " ^ Version.string));
  Alcotest.(check bool) "top shows the campaign row" true
    (contains top "continuous");
  Alcotest.(check bool) "top shows the worker table" true
    (contains top "up");
  let prom = must_read dir "scrape.prom" in
  Alcotest.(check bool) "exposition types the submissions counter" true
    (contains prom "# TYPE darco_submissions_total counter\n");
  Alcotest.(check bool) "one submission at probe time" true
    (contains prom "darco_submissions_total 1\n");
  (match Reg.of_json (J.parse (must_read dir "scrape.json")) with
  | Error e -> Alcotest.failf "scraped snapshot does not parse: %s" e
  | Ok s ->
    let counter n = Option.value ~default:0 (List.assoc_opt n s.Reg.counters) in
    let gauge n = Option.value ~default:0 (List.assoc_opt n s.Reg.gauges) in
    Alcotest.(check bool) "events flowed" true (counter "events_total" > 0);
    Alcotest.(check int) "one campaign active mid-flight" 1
      (gauge "serve_campaigns_active");
    Alcotest.(check bool) "windows still unsettled mid-flight" true
      (gauge "serve_windows_unsettled" > 0);
    Alcotest.(check string) "client-side exposition is the same document"
      prom (Reg.exposition s));
  let health = J.parse (must_read dir "health.json") in
  Alcotest.(check string) "health: serving" "serving" (gets "state" health);
  Alcotest.(check string) "health: build version" Version.string
    (gets "version" health);
  Alcotest.(check int) "health: protocol" Wire.protocol_version
    (geti "protocol" health);
  Alcotest.(check bool) "health: uptime counted" true
    (geti "uptime_s" health >= 0);
  Alcotest.(check bool) "health: the campaign is listed" true
    (List.exists (fun c -> gets "benchmark" c = "continuous")
       (getl "campaigns" health));
  Alcotest.(check bool) "health: the worker is up" true
    (List.exists (fun w -> gets "state" w = "up") (getl "workers" health));
  (* STAT carries the v5 tail *)
  (match String.split_on_char ' ' (must_read dir "status.txt") with
  | [ state; up; version ] ->
    Alcotest.(check string) "status state" "serving" state;
    Alcotest.(check string) "status version" Version.string version;
    Alcotest.(check bool) "status uptime" true (int_of_string up >= 0)
  | _ -> Alcotest.fail "malformed status line");
  (* the periodic dump: valid exposition text, final state on disk *)
  let dump = must_read dir "metrics.prom" in
  Alcotest.(check bool) "metrics file dumped" true (String.length dump > 0);
  Alcotest.(check bool) "final dump counts both submissions" true
    (contains dump "darco_submissions_total 2\n");
  List.iter
    (fun line ->
      if line <> "" && not (has_prefix "# TYPE darco_" line)
         && not (has_prefix "darco_" line)
      then Alcotest.failf "stray exposition line %S" line)
    (String.split_on_char '\n' dump)

let () =
  Alcotest.run "serve"
    [
      ( "campaign",
        [
          Alcotest.test_case "codec roundtrip and rejection" `Quick
            test_campaign_codec;
          Alcotest.test_case "content digests" `Quick test_campaign_digests;
          Alcotest.test_case "golden SUBM frame" `Quick test_subm_golden;
        ] );
      ( "library",
        [
          Alcotest.test_case "window artifacts" `Quick test_library_windows;
          Alcotest.test_case "corruption refused" `Quick
            test_library_corruption;
          Alcotest.test_case "checkpoint sets" `Quick test_library_checkpoints;
        ] );
      ( "service",
        [
          Alcotest.test_case "resubmit, restore, restart" `Quick
            test_serve_resubmit_and_restore;
          Alcotest.test_case "concurrent clients share work" `Quick
            test_serve_concurrent_sharing;
          Alcotest.test_case "adaptive campaign exits early" `Quick
            test_serve_adaptive_campaign;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "scrape, top, health, metrics file" `Quick
            test_serve_telemetry;
        ] );
    ]
