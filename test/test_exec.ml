open Darco_guest
open Darco
module Rng = Darco_util.Rng
module Code = Darco_host.Code
module Stats = Darco_obs.Stats
module Snapshot = Darco_sampling.Snapshot

(* Engine equivalence: the Eval (walker) and Threaded (closure-chain)
   engines behind Exec must be observably identical — same outcomes, same
   counters, same architectural state — at both the IR level and the host
   level, and a snapshot taken under one engine must restore and resume
   under the other (the engine is process configuration, not machine
   state). *)

(* ------------------------------------------------------------------ *)
(* Helpers                                                            *)
(* ------------------------------------------------------------------ *)

let copy_memory src =
  let dst = Memory.create `Auto_zero in
  List.iter
    (fun idx -> Memory.install_page dst idx (Memory.get_page src idx))
    (Memory.touched_pages src);
  dst

let random_state seed =
  let rng = Rng.create (seed + 31) in
  let cpu = Cpu.create () in
  Array.iter
    (fun r -> Cpu.set cpu r (Rng.int rng 0x10000))
    [| Isa.EAX; ECX; EDX; ESI; EDI |];
  Cpu.set cpu EBX Tgen.data_base;
  Cpu.set cpu EBP (Tgen.data_base + 512);
  Cpu.set cpu ESP Loader.stack_top;
  cpu.flags <- Rng.int rng 16;
  Array.iter (fun f -> Cpu.setf cpu f (Rng.float rng *. 16.0)) Isa.all_fregs;
  let mem = Memory.create `Auto_zero in
  for i = 0 to (Tgen.data_size / 4) - 1 do
    Memory.write32 mem (Tgen.data_base + (4 * i)) (Rng.int rng 0x1000000)
  done;
  (cpu, mem)

let mem_equal a b =
  List.for_all
    (fun idx -> Memory.equal_page a b idx)
    (List.sort_uniq compare (Memory.touched_pages a @ Memory.touched_pages b))

(* ------------------------------------------------------------------ *)
(* IR level: Exec.run under both engines on random region IR          *)
(* ------------------------------------------------------------------ *)

(* A random well-formed region: v0 holds the data base, v5 a pinned
   divisor, v1..v4 are scratch.  Forward-only branches, puts in bursts (to
   land in the threaded compiler's fusion window), speculative loads and
   asserts so all three outcomes occur, one exit of each flavour. *)
let gen_region seed : Regionir.t =
  let rng = Rng.create (0x5EED + seed) in
  let dst () = 1 + Rng.int rng 4 in
  let src () = Rng.int rng 6 in
  let fr () = Rng.int rng 3 in
  let disp () = Rng.int rng (Tgen.data_size - 16) in
  let binop () =
    Rng.choose rng
      [|
        Code.Add; Sub; Mul; Mulhu; Mulhs; And; Or; Xor; Shl; Shr; Sar; Slt;
        Sltu; Seq; Sne;
      |]
  in
  let cmp () = Rng.choose rng [| Code.Beq; Bne; Blt; Bge; Bltu; Bgeu |] in
  let width () = Rng.choose rng [| Isa.W8; W16; W32 |] in
  let flkind () =
    Rng.choose rng
      [|
        Code.Fl_add; Fl_adc; Fl_sub; Fl_sbb; Fl_logic; Fl_shl; Fl_shr;
        Fl_sar; Fl_rol; Fl_ror; Fl_inc; Fl_dec; Fl_neg; Fl_mulu; Fl_muls;
      |]
  in
  let greg () = Rng.choose rng Tgen.clobber_regs in
  let gfreg () = Rng.choose rng Isa.all_fregs in
  let op () : Ir.t list =
    match Rng.int rng 22 with
    | 0 -> [ Ir.Ili (dst (), Rng.in_range rng (-4096) 65536) ]
    | 1 -> [ Ir.Imov (dst (), src ()) ]
    | 2 -> [ Ir.Ibin (binop (), dst (), src (), src ()) ]
    | 3 -> [ Ir.Ibini (binop (), dst (), src (), Rng.in_range rng (-64) 4096) ]
    | 4 -> [ Ir.Iload (width (), Rng.bool rng, dst (), 0, disp ()) ]
    | 5 -> [ Ir.Isload (width (), Rng.bool rng, dst (), 0, disp ()) ]
    | 6 -> [ Ir.Istore (width (), src (), 0, disp ()) ]
    | 7 -> [ Ir.Ifli (fr (), (Rng.float rng *. 64.0) -. 32.0) ]
    | 8 -> [ Ir.Ifmov (fr (), fr ()) ]
    | 9 ->
      [
        Ir.Ifbin
          (Rng.choose rng [| Code.Fadd; Fsub; Fmul; Fdiv |], fr (), fr (), fr ());
      ]
    | 10 -> [ Ir.Ifun (Rng.choose rng [| Code.Fsqrt; Fabs; Fneg |], fr (), fr ()) ]
    | 11 -> [ Ir.Ifload (fr (), 0, disp ()) ]
    | 12 -> [ Ir.Ifstore (fr (), 0, disp ()) ]
    | 13 -> [ Ir.Ifcmp (dst (), fr (), fr ()) ]
    | 14 -> [ Ir.Icvtif (fr (), src ()); Ir.Icvtfi (dst (), fr ()) ]
    | 15 ->
      [
        (* Rt_divu/Rt_divs never appear at IR level; division is Irt_div *)
        Ir.Irt_f (Rng.choose rng [| Code.Rt_sin; Rt_cos |], fr (), fr ());
      ]
    | 16 -> [ Ir.Irt_div { signed = Rng.bool rng; q = 1; r = 2; hi = 3; lo = 4; d = 5 } ]
    | 17 -> [ Ir.Iisel (dst (), src (), src (), src ()) ]
    | 18 -> [ Ir.Imkfl (flkind (), dst (), src (), src (), src ()) ]
    | 19 -> [ Ir.Iassert (cmp (), src (), src ()) ]
    | 20 -> [ Ir.Iget (dst (), greg ()); Ir.Igetf (fr (), gfreg ()); Ir.Igetfl (dst ()) ]
    | _ ->
      (* a burst of guest-state puts: the threaded compiler fuses these *)
      [ Ir.Iput (greg (), src ()); Ir.Iputf (gfreg (), fr ()); Ir.Iputfl (src ()) ]
  in
  let prologue =
    [
      Ir.Ili (0, Tgen.data_base);
      Ir.Ili (1, Rng.int rng 0x10000);
      Ir.Ili (2, Rng.int rng 0x10000);
      Ir.Ili (3, Rng.int rng 0x10000);
      Ir.Ili (4, Rng.int rng 0x10000);
      Ir.Ili (5, 1 + Rng.int rng 1000);
      Ir.Ifli (0, Rng.float rng *. 8.0);
      Ir.Ifli (1, (Rng.float rng *. 8.0) -. 4.0);
      Ir.Ifli (2, 1.0 +. Rng.float rng);
    ]
  in
  let n_groups = 2 + Rng.int rng 10 in
  let ops = List.concat (List.init n_groups (fun _ -> op ())) in
  let exit_target =
    if Rng.chance rng 0.8 then Ir.Xdirect 0xEE00
    else if Rng.bool rng then Ir.Xindirect (src ())
    else Ir.Xhalt
  in
  let exit_ =
    Ir.Iexit
      {
        target = exit_target;
        retired = 1 + Rng.int rng 32;
        prefer_bb = Rng.bool rng;
        edge = None;
      }
  in
  let body = Array.of_list (prologue @ ops @ [ exit_ ]) in
  let plen = List.length prologue in
  let m = Array.length body - 1 in
  (* sprinkle forward branches over the generated ops (never the prologue,
     so the scratch vregs stay initialized on every path) *)
  for _ = 1 to Rng.int rng 3 do
    if m > plen + 1 then begin
      let i = plen + Rng.int rng (m - plen - 1) in
      let t = i + 1 + Rng.int rng (m - i) in
      body.(i) <- Ir.Ibr (cmp (), src (), src (), t)
    end
  done;
  {
    Regionir.entry_pc = 0x1000;
    mode = `Super;
    body;
    prof = None;
    guest_len = 1 + Rng.int rng 32;
  }

let outcome_str = function
  | Exec.Exited (_, t) -> Printf.sprintf "Exited -> 0x%x" t
  | Exec.Assert_failed -> "Assert_failed"
  | Exec.Alias_failed -> "Alias_failed"

let prop_ir_engines_agree =
  QCheck.Test.make ~name:"Eval and Threaded agree on random region IR"
    ~count:400 QCheck.small_int (fun seed ->
      let region = gen_region seed in
      Regionir.check_forward_only region;
      let cpu0, mem0 = random_state seed in
      let exec engine =
        let cpu = Cpu.copy cpu0 in
        let mem = copy_memory mem0 in
        (Exec.run ~engine region cpu mem, cpu, mem)
      in
      let oe, ce, me = exec Exec.Eval in
      let ot, ct, mt = exec Exec.Threaded in
      if oe <> ot then
        QCheck.Test.fail_reportf "outcomes differ: eval %s, threaded %s"
          (outcome_str oe) (outcome_str ot)
      else if not (Cpu.equal ce ct) then
        QCheck.Test.fail_reportf "cpu state differs:\n%s"
          (String.concat "\n" (Cpu.diff ce ct))
      else if not (mem_equal me mt) then
        QCheck.Test.fail_report "memory differs between engines"
      else true)

(* A compiled chain must be reusable: running it twice from the same
   initial state gives the same answer (fresh vreg/store-buffer state per
   run, nothing latched in the closures). *)
let test_compiled_reuse () =
  let region = gen_region 1234 in
  let compiled = Threaded.compile_ir region in
  let cpu0, mem0 = random_state 1234 in
  let go () =
    let cpu = Cpu.copy cpu0 and mem = copy_memory mem0 in
    let o = Threaded.run_compiled compiled cpu mem in
    (o, cpu, mem)
  in
  let o1, c1, m1 = go () in
  let o2, c2, m2 = go () in
  Alcotest.(check bool) "same outcome" true (o1 = o2);
  Alcotest.(check bool) "same cpu" true (Cpu.equal c1 c2);
  Alcotest.(check bool) "same memory" true (mem_equal m1 m2)

(* ------------------------------------------------------------------ *)
(* Host level: Threaded.run vs Emulator.run on generated host code    *)
(* ------------------------------------------------------------------ *)

let translate_straightline ?(exit_pc = 0xEE00) insns =
  let ctx = Translate.create ~entry_pc:0x1000 in
  List.iter (fun i -> Translate.translate_insn ctx i ~pc:0x1000 ~len:1) insns;
  Translate.emit_exit ctx (Ir.Xdirect exit_pc);
  Translate.finalize ctx ~mode:`Super ~prof:None

let lower_region cfg region : Darco_host.Code.region =
  let alloc = Regalloc.allocate region in
  let code, _ =
    Codegen.lower cfg region ~alloc ~spill_base:(Loader.tol_base + 0x1000)
      ~ibtc_base:Loader.tol_base
  in
  {
    id = 0;
    entry_pc = region.Regionir.entry_pc;
    mode = region.Regionir.mode;
    base = 0xC0000000;
    code;
    incoming = [];
    invalidated = false;
  }

let run_host engine_run hw (cpu0, mem0) =
  let cpu = Cpu.copy cpu0 in
  let mem = copy_memory mem0 in
  let m = Darco_host.Machine.create mem in
  Darco_host.Machine.copy_guest_in m cpu;
  let res = engine_run m hw in
  Darco_host.Machine.copy_guest_out m cpu;
  (res, cpu, mem)

let same_stop (a : Darco_host.Emulator.stop) (b : Darco_host.Emulator.stop) =
  match (a, b) with
  | Stop_exit x, Stop_exit y ->
    x == y
    || (x.exit_id = y.exit_id && x.kind = y.kind
       && x.guest_retired = y.guest_retired)
  | Stop_indirect_miss x, Stop_indirect_miss y -> x = y
  | Stop_rollback (k1, r1), Stop_rollback (k2, r2) -> k1 = k2 && r1.id = r2.id
  | Stop_fault (p1, r1), Stop_fault (p2, r2) -> p1 = p2 && r1.id = r2.id
  | Stop_fuel x, Stop_fuel y -> x = y
  | _ -> false

let same_result (a : Darco_host.Emulator.result) (b : Darco_host.Emulator.result)
    =
  same_stop a.stop b.stop
  && a.host_retired = b.host_retired
  && a.host_bb = b.host_bb
  && a.host_super = b.host_super
  && a.guest_bb = b.guest_bb
  && a.guest_super = b.guest_super
  && a.chains_followed = b.chains_followed
  && a.wasted_host = b.wasted_host

let stop_str (s : Darco_host.Emulator.stop) =
  match s with
  | Stop_exit x -> Printf.sprintf "exit#%d retiring %d" x.exit_id x.guest_retired
  | Stop_indirect_miss pc -> Printf.sprintf "indirect miss 0x%x" pc
  | Stop_rollback (`Assert, r) -> Printf.sprintf "assert rollback in r%d" r.id
  | Stop_rollback (`Alias, r) -> Printf.sprintf "alias rollback in r%d" r.id
  | Stop_fault (p, r) -> Printf.sprintf "fault page %d in r%d" p r.id
  | Stop_fuel pc -> Printf.sprintf "fuel at 0x%x" pc

let prop_host_engines_agree =
  QCheck.Test.make
    ~name:"Threaded.run matches Emulator.run on generated host code"
    ~count:150 QCheck.small_int (fun seed ->
      let rng = Rng.create ((seed * 131) + 5) in
      let insns = Tgen.insn_block rng (1 + Rng.int rng 25) in
      let state = random_state seed in
      let cfg = Config.default in
      let region = Sched.run cfg (Opt.run cfg (translate_straightline insns)) in
      let hw = lower_region cfg region in
      let resolve _ = None in
      let ra, ca, ma =
        run_host (fun m r -> Darco_host.Emulator.run m ~resolve r) hw state
      in
      let get =
        let tbl = Hashtbl.create 4 in
        fun (r : Darco_host.Code.region) ->
          match Hashtbl.find_opt tbl r.id with
          | Some c -> c
          | None ->
            let c = Threaded.compile r in
            Hashtbl.add tbl r.id c;
            c
      in
      let rb, cb, mb =
        run_host (fun m r -> Threaded.run m ~resolve ~get r) hw state
      in
      if not (same_result ra rb) then
        QCheck.Test.fail_reportf
          "results differ: walker stopped with %s, threaded with %s"
          (stop_str ra.stop) (stop_str rb.stop)
      else if not (Cpu.equal ca cb) then
        QCheck.Test.fail_reportf "cpu state differs:\n%s"
          (String.concat "\n" (Cpu.diff ca cb))
      else if not (mem_equal ma mb) then
        QCheck.Test.fail_report "memory differs between engines"
      else true)

(* Fusion edge cases the random generator cannot be trusted to hit: a
   Commit/Exit pair that fuses, and the same pair with the Exit as a branch
   target (fusion must be suppressed so the branch lands on a real step). *)
let test_host_fusion_cases () =
  let exit_info chain_id : Darco_host.Code.exit_info =
    {
      exit_id = chain_id;
      kind = Darco_host.Code.Exit_direct 0xEE00;
      guest_retired = 3;
      chain = None;
      prefer_bb = false;
    }
  in
  let cases =
    [
      (* straight fused pair *)
      ( "fused commit/exit",
        [|
          Darco_host.Code.Li (0, 7);
          Darco_host.Code.Commit 3;
          Darco_host.Code.Exit (exit_info 0);
        |] );
      (* branch targets the Exit: the pair must not fuse away the target *)
      ( "exit as branch target",
        [|
          Darco_host.Code.Li (0, 1);
          Darco_host.Code.Li (1, 1);
          Darco_host.Code.B (Darco_host.Code.Beq, 0, 1, 4);
          Darco_host.Code.Commit 3;
          Darco_host.Code.Exit (exit_info 1);
        |] );
      (* unconditional jump over a commit into the exit *)
      ( "jump to exit",
        [|
          Darco_host.Code.Li (0, 7);
          Darco_host.Code.J 3;
          Darco_host.Code.Commit 9;
          Darco_host.Code.Exit (exit_info 2);
        |] );
    ]
  in
  List.iter
    (fun (what, code) ->
      let hw : Darco_host.Code.region =
        {
          id = 0;
          entry_pc = 0x1000;
          mode = `Super;
          base = 0xC0000000;
          code;
          incoming = [];
          invalidated = false;
        }
      in
      let state = random_state 7 in
      let resolve _ = None in
      let ra, ca, _ =
        run_host (fun m r -> Darco_host.Emulator.run m ~resolve r) hw state
      in
      let rb, cb, _ =
        run_host
          (fun m r -> Threaded.run m ~resolve ~get:Threaded.compile r)
          hw state
      in
      Alcotest.(check bool)
        (what ^ ": results identical")
        true (same_result ra rb);
      Tgen.check_cpu_equal what ca cb)
    cases

(* ------------------------------------------------------------------ *)
(* Cross-engine snapshot golden test                                  *)
(* ------------------------------------------------------------------ *)

let build name = (Darco_workloads.Registry.find name).build ~scale:1 ()

let expect_done what = function
  | `Done -> ()
  | `Limit -> Alcotest.failf "%s: hit instruction limit" what
  | `Diverged (d : Controller.divergence) ->
    Alcotest.failf "%s: diverged at %d:\n%s" what d.at_retired
      (String.concat "\n" d.details)

type final = {
  f_stats : Stats.t;
  f_ref_hash : string;
  f_co_hash : string;
  f_output : string;
  f_exit : int option;
}

let final_of (ctl : Controller.t) =
  {
    f_stats = Controller.stats ctl;
    f_ref_hash = Snapshot.memory_hash ctl.reference.mem;
    f_co_hash = Snapshot.memory_hash ctl.co.mem;
    f_output = Controller.output ctl;
    f_exit = Controller.exit_code ctl;
  }

let check_final what want got =
  Alcotest.(check bool) (what ^ ": final stats identical") true
    (Stats.equal want.f_stats got.f_stats);
  Alcotest.(check string) (what ^ ": guest memory hash") want.f_ref_hash
    got.f_ref_hash;
  Alcotest.(check string) (what ^ ": co-designed memory hash") want.f_co_hash
    got.f_co_hash;
  Alcotest.(check string) (what ^ ": program output") want.f_output got.f_output;
  Alcotest.(check (option int)) (what ^ ": exit code") want.f_exit got.f_exit

(* A full run is engine-invariant, a snapshot written under Eval is
   byte-identical to one written under Threaded at the same offset (the
   engine is not part of the wire format), and a snapshot captured under
   Eval restores into a controller that resumes under the default Threaded
   engine with the same final state. *)
let test_cross_engine_snapshot () =
  Alcotest.(check bool) "Threaded is the default engine" true
    (Config.default.engine = Config.Threaded);
  let program = build "continuous" in
  let seed = 11 in
  let offset = 50_000 in
  let cfg_of engine = { Config.quick with engine; slice_fuel = 2_000 } in
  let full engine =
    let ctl = Controller.create ~cfg:(cfg_of engine) ~seed program in
    expect_done (Exec.engine_name engine ^ " uninterrupted") (Controller.run ctl);
    final_of ctl
  in
  let want_thr = full Config.Threaded in
  let want_eval = full Config.Eval in
  check_final "uninterrupted eval vs threaded" want_thr want_eval;
  let capture_at engine =
    let part = Controller.create ~cfg:(cfg_of engine) ~seed program in
    (match Controller.run ~max_insns:offset part with
    | `Limit -> ()
    | `Done -> Alcotest.fail "offset beyond program end"
    | `Diverged _ -> Alcotest.fail "diverged before offset");
    Snapshot.to_string (Snapshot.capture part)
  in
  let bytes_eval = capture_at Config.Eval in
  let bytes_thr = capture_at Config.Threaded in
  Alcotest.(check bool) "snapshot bytes engine-invariant" true
    (String.equal bytes_eval bytes_thr);
  (* restore uses Config.default, so the Eval-captured snapshot resumes
     under Threaded: the cross-engine handoff *)
  let resumed = Snapshot.restore (Snapshot.of_string bytes_eval) in
  Alcotest.(check bool) "resumes under Threaded" true
    (resumed.Controller.cfg.engine = Config.Threaded);
  expect_done "captured under eval, resumed under threaded"
    (Controller.run resumed);
  check_final "cross-engine resume" want_thr (final_of resumed)

(* ------------------------------------------------------------------ *)

let test_engine_names () =
  List.iter
    (fun e ->
      Alcotest.(check bool) "name round-trips" true
        (Exec.engine_of_string (Exec.engine_name e) = Some e))
    [ Exec.Eval; Exec.Threaded ];
  Alcotest.(check bool) "unknown rejected" true
    (Exec.engine_of_string "jit" = None)

let () =
  Alcotest.run "exec"
    [
      ( "engines",
        [
          QCheck_alcotest.to_alcotest prop_ir_engines_agree;
          QCheck_alcotest.to_alcotest prop_host_engines_agree;
          Alcotest.test_case "compiled chain is reusable" `Quick
            test_compiled_reuse;
          Alcotest.test_case "host fusion edge cases" `Quick
            test_host_fusion_cases;
          Alcotest.test_case "engine names round-trip" `Quick test_engine_names;
          Alcotest.test_case "cross-engine snapshot" `Slow
            test_cross_engine_snapshot;
        ] );
    ]
