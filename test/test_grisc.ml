open Darco_guest
module G = Darco_grisc.Grisc
module Rng = Darco_util.Rng

(* The second guest front-end: decode/encode roundtrip and differential
   execution (Grisc interpreter vs shared-IR pipeline vs host code). *)

let random_insn rng : G.insn =
  let reg () = Rng.int rng 8 in
  let op () : G.binop =
    match Rng.int rng 6 with
    | 0 -> Add | 1 -> Sub | 2 -> Mul | 3 -> And | 4 -> Or | _ -> Xor
  in
  match Rng.int rng 5 with
  | 0 -> Li (reg (), Rng.int rng 100000)
  | 1 -> Bini (op (), reg (), reg (), Rng.int rng 4096)
  | 2 -> Bin (op (), reg (), reg (), reg ())
  | 3 -> Lw (reg (), 6, 4 * Rng.int rng 64)   (* r6 = data base *)
  | _ -> Sw (reg (), 6, 4 * Rng.int rng 64)

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"grisc encode/decode roundtrip" ~count:500
    QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 3) in
      let insn = random_insn rng in
      let b = G.encode insn in
      G.decode ~fetch:(fun i -> Char.code (Bytes.get b i)) ~pc:0 = insn)

let fresh_state seed =
  let rng = Rng.create (seed + 19) in
  let cpu = Cpu.create () in
  for r = 0 to 7 do
    Cpu.set cpu Isa.all_regs.(r) (Rng.int rng 0x100000)
  done;
  (* r6 points at the data region *)
  Cpu.set cpu Isa.all_regs.(6) 0x3000;
  let mem = Memory.create `Auto_zero in
  for i = 0 to 127 do
    Memory.write32 mem (0x3000 + (4 * i)) (Rng.int rng 0x1000000)
  done;
  (cpu, mem)

let copy_memory src =
  let dst = Memory.create `Auto_zero in
  List.iter
    (fun idx -> Memory.install_page dst idx (Memory.get_page src idx))
    (Memory.touched_pages src);
  dst

let prop_frontend_differential =
  QCheck.Test.make ~name:"grisc: interpreter = shared pipeline = host code"
    ~count:200 QCheck.small_int (fun seed ->
      let rng = Rng.create (seed * 131) in
      let insns = List.init (1 + Rng.int rng 15) (fun _ -> random_insn rng) in
      let cpu0, mem0 = fresh_state seed in
      (* reference: the Grisc interpreter *)
      let ref_cpu = Cpu.copy cpu0 and ref_mem = copy_memory mem0 in
      ref_cpu.eip <- 0x1000;
      List.iter (fun i -> G.Interp.step ref_cpu ref_mem i) insns;
      (* shared pipeline: translate, optimize, schedule, evaluate *)
      let region = G.Frontend.translate_block ~entry_pc:0x1000 insns in
      let region = Darco.Opt.run Darco.Config.default region in
      let region = Darco.Sched.run Darco.Config.default region in
      let ir_cpu = Cpu.copy cpu0 and ir_mem = copy_memory mem0 in
      (match Darco.Exec.run region ir_cpu ir_mem with
      | Darco.Exec.Exited _ -> ()
      | _ -> QCheck.Test.fail_report "ir did not exit");
      (* host code *)
      let alloc = Darco.Regalloc.allocate region in
      let code, _ =
        Darco.Codegen.lower Darco.Config.default region ~alloc
          ~spill_base:(Loader.tol_base + 0x1000) ~ibtc_base:Loader.tol_base
      in
      let hw : Darco_host.Code.region =
        { id = 0; entry_pc = 0x1000; mode = `Super; base = 0xC0000000; code;
          incoming = []; invalidated = false }
      in
      let hw_cpu = Cpu.copy cpu0 and hw_mem = copy_memory mem0 in
      let m = Darco_host.Machine.create hw_mem in
      Darco_host.Machine.copy_guest_in m hw_cpu;
      (match (Darco_host.Emulator.run m ~resolve:(fun _ -> None) hw).stop with
      | Darco_host.Emulator.Stop_exit _ -> ()
      | _ -> QCheck.Test.fail_report "host did not exit");
      Darco_host.Machine.copy_guest_out m hw_cpu;
      let eq a b =
        let a = Cpu.copy a and b = Cpu.copy b in
        a.eip <- 0;
        b.eip <- 0;
        (* the x86-flavoured flag state is not part of Grisc's contract *)
        a.flags <- 0;
        b.flags <- 0;
        Cpu.equal a b
      in
      let mem_eq x y =
        List.for_all
          (fun idx -> Memory.equal_page x y idx)
          (List.sort_uniq compare (Memory.touched_pages x @ Memory.touched_pages y)
          |> List.filter (fun idx -> Memory.page_base idx < Loader.tol_base))
      in
      eq ref_cpu ir_cpu && mem_eq ref_mem ir_mem && eq ref_cpu hw_cpu
      && mem_eq ref_mem hw_mem)

let test_branch_block () =
  (* a loop written in Grisc, run by chasing region exits *)
  let body = [ G.Bin (Add, 0, 0, 1); G.Bini (Sub, 1, 1, 1); G.Bne (1, 7, 0x1000) ] in
  let region = G.Frontend.translate_block ~entry_pc:0x1000 body in
  let cpu = Cpu.create () in
  Cpu.set cpu Isa.all_regs.(0) 0;
  Cpu.set cpu Isa.all_regs.(1) 10;
  Cpu.set cpu Isa.all_regs.(7) 0;
  let mem = Memory.create `Auto_zero in
  let rec chase n =
    if n > 100 then Alcotest.fail "runaway";
    match Darco.Exec.run region cpu mem with
    | Darco.Exec.Exited (_, 0x1000) -> chase (n + 1)
    | Darco.Exec.Exited (_, _) -> ()
    | _ -> Alcotest.fail "unexpected outcome"
  in
  chase 0;
  Alcotest.(check int) "sum 10..1" 55 (Cpu.get cpu Isa.all_regs.(0))

let test_interp_run_from_memory () =
  let program = [ G.Li (0, 7); G.Bini (Mul, 0, 0, 6); G.Halt ] in
  let mem = Memory.create `Auto_zero in
  List.iteri
    (fun i insn -> Memory.blit_bytes mem (0x1000 + (G.insn_bytes * i)) (G.encode insn))
    program;
  let cpu = Cpu.create () in
  cpu.eip <- 0x1000;
  G.Interp.run cpu mem;
  Alcotest.(check int) "7*6" 42 (Cpu.get cpu Isa.all_regs.(0));
  Alcotest.(check bool) "halted" true cpu.halted

let () =
  Alcotest.run "grisc"
    [
      ( "second-frontend",
        [
          QCheck_alcotest.to_alcotest prop_codec_roundtrip;
          QCheck_alcotest.to_alcotest prop_frontend_differential;
          Alcotest.test_case "branch block" `Quick test_branch_block;
          Alcotest.test_case "fetch/decode/execute" `Quick test_interp_run_from_memory;
        ] );
    ]
