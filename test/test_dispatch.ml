(* The distributed sweep, tested against real processes: worker daemons
   forked onto ephemeral loopback ports, a real dispatcher, and failures
   injected where a cluster actually produces them — a worker dying with a
   unit in flight, a worker that never existed, a corrupted byte stream. *)

module Sweep = Darco_sampling.Sweep
module Work = Darco_sampling.Work
module Driver = Darco_sampling.Driver
module Wire = Darco_dispatch.Wire
module Worker = Darco_dispatch.Worker
module Event = Darco_obs.Event
module J = Darco_obs.Jsonx

let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

(* Fork a worker daemon on an ephemeral port; the child reports the
   kernel-assigned port through a pipe once it is actually listening, so
   there is no race between spawn and first connect. *)
let spawn_worker ?exec () =
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    Unix.close r;
    (try
       Worker.serve ~quiet:true ?exec
         ~ready:(fun sa ->
           let port = match sa with Unix.ADDR_INET (_, p) -> p | _ -> 0 in
           let line = Bytes.of_string (string_of_int port ^ "\n") in
           ignore (Unix.write w line 0 (Bytes.length line));
           Unix.close w)
         ~host:"127.0.0.1" ~port:0 ()
     with _ -> ());
    Unix._exit 0
  | pid ->
    Unix.close w;
    let buf = Bytes.create 16 in
    let n = Unix.read r buf 0 16 in
    Unix.close r;
    let port = int_of_string (String.trim (Bytes.sub_string buf 0 n)) in
    (pid, { Darco_dispatch.host = "127.0.0.1"; port })

let reap pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] pid)

(* A small real sweep: functional checkpoints over a physics workload,
   four short detailed windows.  Shared across tests (the checkpointing
   pass is the expensive part). *)
let works =
  lazy
    (let program = (Darco_workloads.Registry.find "continuous").build ~scale:1 () in
     let checkpoints =
       Driver.functional_checkpoints ~seed:7 ~interval:10_000 ~horizon:40_000
         program
     in
     List.map
       (fun off ->
         Work.of_window ~checkpoints
           ~label:(Printf.sprintf "continuous@%d" off)
           ~offset:off ~window:2_000 ~warmup:1_000)
       [ 8_000; 16_000; 24_000; 32_000 ])

let render (r : Sweep.result) =
  r.label ^ " => "
  ^ (match r.outcome with
    | Sweep.Ok j -> J.to_string j
    | Sweep.Failed e -> "FAILED " ^ e)

(* What the Local backend says — the reference every remote run must
   reproduce byte for byte. *)
let expected =
  lazy (List.map render (Sweep.run (Sweep.Backend.local ~jobs:2 ()) (Lazy.force works)))

let collecting_bus () =
  let events = ref [] in
  let bus = Darco_obs.Bus.create () in
  Darco_obs.Bus.attach bus ~name:"collect" (fun ~at:_ ev -> events := ev :: !events);
  (bus, events)

let saw events p = List.exists p !events

(* --- 1. loopback end-to-end: remote results bit-identical to Local --- *)
let test_loopback_e2e () =
  let p1, a1 = spawn_worker () in
  let p2, a2 = spawn_worker () in
  Fun.protect
    ~finally:(fun () -> reap p1; reap p2)
    (fun () ->
      let bus, events = collecting_bus () in
      let remote =
        Sweep.run (Darco_dispatch.remote ~bus [ a1; a2 ]) (Lazy.force works)
      in
      Alcotest.(check (list string))
        "remote sweep bit-identical to local" (Lazy.force expected)
        (List.map render remote);
      Alcotest.(check bool) "both workers connected" true
        (saw events (function Event.Worker_up _ -> true | _ -> false));
      Alcotest.(check bool) "every unit acknowledged" true
        (List.length
           (List.filter (function Event.Dispatch_done _ -> true | _ -> false)
              !events)
        = List.length (Lazy.force works)))

(* --- 2. a worker dies with a unit in flight: the unit is reassigned and
   the sweep still completes with the right answer --- *)
let test_worker_died_mid_unit () =
  (* this daemon handshakes and accepts a unit, then dies without replying *)
  let pbad, abad = spawn_worker ~exec:(fun _ -> Unix._exit 0) () in
  let pgood, agood = spawn_worker () in
  Fun.protect
    ~finally:(fun () -> reap pbad; reap pgood)
    (fun () ->
      let bus, events = collecting_bus () in
      let remote =
        Sweep.run
          (Darco_dispatch.remote ~bus ~retries:3 [ abad; agood ])
          (Lazy.force works)
      in
      Alcotest.(check (list string))
        "completes despite mid-unit worker death" (Lazy.force expected)
        (List.map render remote);
      Alcotest.(check bool) "the loss was observed" true
        (saw events (function Event.Worker_lost _ -> true | _ -> false));
      Alcotest.(check bool) "the orphaned unit was retried" true
        (saw events (function Event.Dispatch_retry _ -> true | _ -> false)))

(* --- 3. no reachable worker: graceful degradation to the local fork
   backend, same results --- *)
let test_unreachable_falls_back () =
  (* an ephemeral port with provably nobody behind it *)
  let sock = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.bind sock (ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname sock with ADDR_INET (_, p) -> p | _ -> 0
  in
  Unix.close sock;
  let bus, events = collecting_bus () in
  let remote =
    Sweep.run
      (Darco_dispatch.remote ~bus ~fallback_jobs:2 ~timeout:2.0
         [ { Darco_dispatch.host = "127.0.0.1"; port } ])
      (Lazy.force works)
  in
  Alcotest.(check (list string))
    "falls back to local and completes" (Lazy.force expected)
    (List.map render remote);
  Alcotest.(check bool) "fallback was announced" true
    (saw events (function Event.Dispatch_fallback _ -> true | _ -> false))

(* --- 4. protocol robustness: malformed frames are rejected cleanly and
   the daemon keeps serving --- *)
let le64 n = String.init 8 (fun i -> Char.chr ((n lsr (8 * i)) land 0xff))

let write_all fd s =
  ignore (Unix.write_substring fd s 0 (String.length s))

let connect (a : Darco_dispatch.addr) =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.connect fd (ADDR_INET (Worker.resolve a.host, a.port));
  Wire.send fd (Wire.Hello Wire.protocol_version);
  (match Wire.recv ~deadline:(Unix.gettimeofday () +. 10.0) fd with
  | Wire.Hello v ->
    Alcotest.(check int) "hello echoed" Wire.protocol_version v
  | _ -> Alcotest.fail "expected the hello echo");
  fd

let test_malformed_frame_rejected () =
  let pid, addr = spawn_worker () in
  Fun.protect
    ~finally:(fun () -> reap pid)
    (fun () ->
      let deadline () = Unix.gettimeofday () +. 10.0 in
      (* a WORK frame whose payload does not match its CRC *)
      let fd = connect addr in
      write_all fd ("WORK" ^ le64 4 ^ le64 0 ^ "junk");
      (match Wire.recv ~deadline:(deadline ()) fd with
      | Wire.Fail reason ->
        Alcotest.(check bool) "reason is non-empty" true (String.length reason > 0)
      | _ -> Alcotest.fail "expected a Fail reply to a corrupt frame");
      (* the stream is no longer trusted: the daemon drops this connection *)
      (match Wire.recv ~deadline:(deadline ()) fd with
      | exception Wire.Closed -> ()
      | _ -> Alcotest.fail "expected the corrupted connection to be dropped");
      Unix.close fd;
      (* a well-framed message that is not a valid work unit fails only the
         request: the same connection keeps working *)
      let fd = connect addr in
      Wire.send fd (Wire.Work "this is not a DWRK unit");
      (match Wire.recv ~deadline:(deadline ()) fd with
      | Wire.Fail _ -> ()
      | _ -> Alcotest.fail "expected a Fail reply to a bogus unit");
      Wire.send fd Wire.Ping;
      (match Wire.recv ~deadline:(deadline ()) fd with
      | Wire.Pong -> ()
      | _ -> Alcotest.fail "expected Pong after the contained failure");
      (* and the daemon still executes real work afterwards *)
      (match Lazy.force works with
      | w :: _ ->
        Wire.send fd (Wire.Work (Work.to_string w));
        (match Wire.recv ~deadline:(deadline ()) fd with
        | Wire.Result json ->
          Alcotest.(check bool) "result parses as JSON" true
            (match J.parse json with _ -> true | exception _ -> false)
        | _ -> Alcotest.fail "expected a Result for a genuine unit")
      | [] -> Alcotest.fail "no work units");
      Unix.close fd)

(* --- spec parsing (the CLI's --backend flag) --- *)
let test_spec_parsing () =
  let ok = function Ok s -> s | Error e -> Alcotest.failf "parse failed: %s" e in
  (match ok (Darco_dispatch.spec_of_string ~jobs:3 "local") with
  | Darco_dispatch.Local { jobs } -> Alcotest.(check int) "default jobs" 3 jobs
  | _ -> Alcotest.fail "expected Local");
  (match ok (Darco_dispatch.spec_of_string "local:9") with
  | Darco_dispatch.Local { jobs } -> Alcotest.(check int) "explicit jobs" 9 jobs
  | _ -> Alcotest.fail "expected Local");
  (match ok (Darco_dispatch.spec_of_string ~timeout:5.0 ~retries:1 "remote:a:1,b:2") with
  | Darco_dispatch.Remote { workers; timeout; retries } ->
    Alcotest.(check (list string)) "workers"
      [ "a:1"; "b:2" ]
      (List.map Darco_dispatch.addr_to_string workers);
    Alcotest.(check (float 0.0)) "timeout" 5.0 timeout;
    Alcotest.(check int) "retries" 1 retries
  | _ -> Alcotest.fail "expected Remote");
  let bad s =
    match Darco_dispatch.spec_of_string s with
    | Ok _ -> Alcotest.failf "accepted bad spec %S" s
    | Error _ -> ()
  in
  List.iter bad [ ""; "local:zero"; "remote:"; "remote:host"; "remote:host:0"; "ftp:x" ]

let () =
  Alcotest.run "dispatch"
    [
      ( "protocol",
        [
          Alcotest.test_case "spec parsing" `Quick test_spec_parsing;
          Alcotest.test_case "malformed frames rejected" `Quick
            test_malformed_frame_rejected;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "loopback end-to-end" `Quick test_loopback_e2e;
          Alcotest.test_case "worker dies mid-unit" `Quick
            test_worker_died_mid_unit;
          Alcotest.test_case "unreachable worker falls back" `Quick
            test_unreachable_falls_back;
        ] );
    ]
