(* The distributed sweep, tested against real processes: worker daemons
   forked onto ephemeral loopback ports, a real dispatcher, and failures
   injected where a cluster actually produces them — a worker dying with a
   unit in flight, a worker that never existed, a corrupted byte stream, a
   checkpoint push whose bytes do not match their digest. *)

module Sweep = Darco_sampling.Sweep
module Work = Darco_sampling.Work
module Store = Darco_sampling.Store
module Driver = Darco_sampling.Driver
module B = Darco_sampling.Buf
module Wire = Darco_dispatch.Wire
module Worker = Darco_dispatch.Worker
module Event = Darco_obs.Event
module J = Darco_obs.Jsonx

let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

(* Fork a worker daemon on an ephemeral port; the child reports the
   kernel-assigned port through a pipe once it is actually listening, so
   there is no race between spawn and first connect. *)
let spawn_worker ?exec ?jobs ?isolate () =
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    Unix.close r;
    (try
       Worker.serve ~quiet:true ?exec ?jobs ?isolate
         ~ready:(fun sa ->
           let port = match sa with Unix.ADDR_INET (_, p) -> p | _ -> 0 in
           let line = Bytes.of_string (string_of_int port ^ "\n") in
           ignore (Unix.write w line 0 (Bytes.length line));
           Unix.close w)
         ~host:"127.0.0.1" ~port:0 ()
     with _ -> ());
    Unix._exit 0
  | pid ->
    Unix.close w;
    let buf = Bytes.create 16 in
    let n = Unix.read r buf 0 16 in
    Unix.close r;
    let port = int_of_string (String.trim (Bytes.sub_string buf 0 n)) in
    (pid, { Darco_dispatch.host = "127.0.0.1"; port })

let reap pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] pid)

(* A small real sweep: functional checkpoints over a physics workload,
   four short detailed windows.  Shared across tests (the checkpointing
   pass is the expensive part). *)
let checkpoints =
  lazy
    (let program = (Darco_workloads.Registry.find "continuous").build ~scale:1 () in
     Driver.functional_checkpoints ~seed:7 ~interval:10_000 ~horizon:40_000
       program)

let works =
  lazy
    (List.map
       (fun off ->
         Work.of_window ~checkpoints:(Lazy.force checkpoints)
           ~label:(Printf.sprintf "continuous@%d" off)
           ~offset:off ~window:2_000 ~warmup:1_000)
       [ 8_000; 16_000; 24_000; 32_000 ])

let render (r : Sweep.result) =
  r.label ^ " => "
  ^ (match r.outcome with
    | Sweep.Ok j -> J.to_string j
    | Sweep.Failed e -> "FAILED " ^ e)

(* What the Local backend says — the reference every remote run must
   reproduce byte for byte. *)
let expected =
  lazy (List.map render (Sweep.run (Sweep.Backend.local ~jobs:2 ()) (Lazy.force works)))

let collecting_bus () =
  let events = ref [] in
  let bus = Darco_obs.Bus.create () in
  Darco_obs.Bus.attach bus ~name:"collect" (fun ~at:_ ev -> events := ev :: !events);
  (bus, events)

let saw events p = List.exists p !events
let count events p = List.length (List.filter p !events)

(* --- 1. loopback end-to-end: remote results bit-identical to Local --- *)
let test_loopback_e2e () =
  let p1, a1 = spawn_worker () in
  let p2, a2 = spawn_worker () in
  Fun.protect
    ~finally:(fun () -> reap p1; reap p2)
    (fun () ->
      let bus, events = collecting_bus () in
      let remote =
        Sweep.run (Darco_dispatch.remote ~bus [ a1; a2 ]) (Lazy.force works)
      in
      Alcotest.(check (list string))
        "remote sweep bit-identical to local" (Lazy.force expected)
        (List.map render remote);
      Alcotest.(check bool) "both workers connected" true
        (saw events (function Event.Worker_up _ -> true | _ -> false));
      Alcotest.(check bool) "every unit acknowledged" true
        (count events (function Event.Dispatch_done _ -> true | _ -> false)
        = List.length (Lazy.force works)))

(* --- 1a. the same loopback against --isolate workers: the fork engine
   is no longer the daemon's default, so pin that its results stay
   byte-identical to Local (and hence to the domain-pool engine) --- *)
let test_loopback_isolate () =
  let p1, a1 = spawn_worker ~isolate:true () in
  let p2, a2 = spawn_worker ~isolate:true ~jobs:2 () in
  Fun.protect
    ~finally:(fun () -> reap p1; reap p2)
    (fun () ->
      let remote =
        Sweep.run (Darco_dispatch.remote [ a1; a2 ]) (Lazy.force works)
      in
      Alcotest.(check (list string))
        "isolated workers bit-identical to local" (Lazy.force expected)
        (List.map render remote))

(* --- 1b. observability of the same sweep: lifecycle events carry
   wall-clock stamps, worker span logs ship back inside RSLT frames and
   replay on the dispatcher bus, and the merged timeline renders to a
   Chrome trace-event document that passes the validator CI enforces --- *)
let test_sweep_observability () =
  let p1, a1 = spawn_worker () in
  let p2, a2 = spawn_worker () in
  Fun.protect
    ~finally:(fun () -> reap p1; reap p2)
    (fun () ->
      let bus, events = collecting_bus () in
      let stamps = ref [] in
      Darco_obs.Bus.attach bus ~name:"stamps" (fun ~at ev ->
          match ev with
          | Event.Worker_up _ | Event.Dispatch_sent _ | Event.Dispatch_done _
            ->
            stamps := at :: !stamps
          | _ -> ());
      let chrome = Darco_obs.Chrome.attach bus in
      let remote =
        Sweep.run (Darco_dispatch.remote ~bus [ a1; a2 ]) (Lazy.force works)
      in
      Alcotest.(check (list string))
        "observed sweep still bit-identical to local" (Lazy.force expected)
        (List.map render remote);
      (* the dispatch-event stamping fix: lifecycle events used to be
         emitted at:0; they must carry real wall-clock microseconds *)
      Alcotest.(check bool) "lifecycle events observed" true (!stamps <> []);
      Alcotest.(check bool) "lifecycle events stamped with wall-clock time"
        true
        (List.for_all (fun at -> at > 0) !stamps);
      (* spans from both sides of the wire are on the one bus *)
      let span_hosts =
        List.filter_map
          (fun ev ->
            Option.map
              (fun s -> s.Darco_obs.Span.host)
              (Darco_obs.Span.of_event ev))
          !events
      in
      Alcotest.(check bool) "dispatcher-side spans present" true
        (List.mem "dispatcher" span_hosts);
      Alcotest.(check bool) "worker spans merged into the timeline" true
        (List.exists
           (fun h -> String.length h >= 7 && String.sub h 0 7 = "worker:")
           span_hosts);
      (* every unit ran somewhere: a worker-side "running" begin per unit *)
      Alcotest.(check bool) "a running span per unit" true
        (count events (function
           | Event.Span_begin { span = "running"; host; _ } ->
             String.length host >= 7 && String.sub host 0 7 = "worker:"
           | _ -> false)
        >= List.length (Lazy.force works));
      (* and the merged timeline is a valid Chrome trace-event document *)
      (match Darco_obs.Chrome.validate (Darco_obs.Chrome.to_json chrome) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "chrome trace invalid: %s" e);
      let tmp = Filename.temp_file "darco_trace" ".json" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
        (fun () ->
          Darco_obs.Chrome.write_file chrome tmp;
          match Darco_obs.Chrome.validate_file tmp with
          | Ok () -> ()
          | Error e -> Alcotest.failf "written trace invalid: %s" e))

(* --- 2. digest-addressed units: four windows off one checkpoint ship the
   snapshot bytes to each worker at most once, and repeat assignments are
   observed as cache hits --- *)
let test_ckpt_shipped_once () =
  let store = Store.create () in
  (* offsets whose warm-up starts all land inside [10_000, 20_000): one
     shared checkpoint, hence one digest for the whole sweep *)
  let stored =
    List.map
      (fun off ->
        Work.of_window_stored ~store ~checkpoints:(Lazy.force checkpoints)
          ~label:(Printf.sprintf "continuous@%d" off)
          ~offset:off ~window:2_000 ~warmup:1_000)
      [ 12_000; 14_000; 16_000; 18_000 ]
  in
  Alcotest.(check int) "one checkpoint in the store" 1 (Store.count store);
  let local =
    List.map render (Sweep.run (Sweep.Backend.local ~store ~jobs:2 ()) stored)
  in
  let p1, a1 = spawn_worker ~jobs:2 () in
  let p2, a2 = spawn_worker ~jobs:1 () in
  Fun.protect
    ~finally:(fun () -> reap p1; reap p2)
    (fun () ->
      let bus, events = collecting_bus () in
      let remote =
        Sweep.run (Darco_dispatch.remote ~bus ~store [ a1; a2 ]) stored
      in
      Alcotest.(check (list string))
        "digest-addressed remote sweep bit-identical to local" local
        (List.map render remote);
      (* each (worker, digest) pair was pushed at most once *)
      let pushes = Hashtbl.create 4 in
      List.iter
        (function
          | Event.Ckpt_push { worker; digest; _ } ->
            let k = (worker, digest) in
            Hashtbl.replace pushes k (1 + Option.value ~default:0 (Hashtbl.find_opt pushes k))
          | _ -> ())
        !events;
      Alcotest.(check bool) "at least one checkpoint push" true
        (Hashtbl.length pushes >= 1);
      Hashtbl.iter
        (fun (worker, digest) n ->
          if n > 1 then
            Alcotest.failf "checkpoint %s pushed %d times to %s" digest n worker)
        pushes;
      (* 4 units, 3 slots, 1 digest: some worker reused its cached copy *)
      Alcotest.(check bool) "at least one checkpoint cache hit" true
        (saw events (function Event.Ckpt_hit _ -> true | _ -> false)))

(* --- 3. work stealing: a unit stuck on a slow worker is speculatively
   duplicated onto an idle one, and the result is still byte-identical --- *)
let test_steal_from_slow_worker () =
  let slow_exec w =
    Unix.sleepf 5.0;
    Work.exec w
  in
  let pslow, aslow = spawn_worker ~exec:slow_exec () in
  let pfast, afast = spawn_worker () in
  Fun.protect
    ~finally:(fun () -> reap pslow; reap pfast)
    (fun () ->
      let bus, events = collecting_bus () in
      let remote =
        Sweep.run
          (Darco_dispatch.remote ~bus ~timeout:8.0 [ aslow; afast ])
          (Lazy.force works)
      in
      Alcotest.(check (list string))
        "sweep completes with identical results despite the slow worker"
        (Lazy.force expected) (List.map render remote);
      Alcotest.(check bool) "the stuck unit was stolen" true
        (saw events (function Event.Steal _ -> true | _ -> false)))

(* --- 4. a worker dies with units in flight: the units are reassigned and
   the sweep still completes with the right answer --- *)
let test_worker_died_mid_unit () =
  (* this daemon handshakes and accepts a unit, then the unit kills the
     daemon — the connection drops with the unit in flight.  The unit
     runs on a domain of the daemon process (the default engine), so
     getpid () IS the daemon *)
  let suicide _ =
    Unix.kill (Unix.getpid ()) Sys.sigkill;
    Unix.sleepf 10.0;
    Alcotest.fail "unreachable"
  in
  let pbad, abad = spawn_worker ~exec:suicide () in
  let pgood, agood = spawn_worker () in
  Fun.protect
    ~finally:(fun () -> reap pbad; reap pgood)
    (fun () ->
      let bus, events = collecting_bus () in
      let remote =
        Sweep.run
          (Darco_dispatch.remote ~bus ~retries:3 [ abad; agood ])
          (Lazy.force works)
      in
      Alcotest.(check (list string))
        "completes despite mid-unit worker death" (Lazy.force expected)
        (List.map render remote);
      Alcotest.(check bool) "the loss was observed" true
        (saw events (function Event.Worker_lost _ -> true | _ -> false));
      Alcotest.(check bool) "the orphaned unit was retried" true
        (saw events (function Event.Dispatch_retry _ -> true | _ -> false)))

(* --- 5. no reachable worker: graceful degradation to the local fork
   backend, same results --- *)
let test_unreachable_falls_back () =
  (* an ephemeral port with provably nobody behind it *)
  let sock = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.bind sock (ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname sock with ADDR_INET (_, p) -> p | _ -> 0
  in
  Unix.close sock;
  let bus, events = collecting_bus () in
  let remote =
    Sweep.run
      (Darco_dispatch.remote ~bus ~fallback_jobs:2 ~timeout:2.0
         [ { Darco_dispatch.host = "127.0.0.1"; port } ])
      (Lazy.force works)
  in
  Alcotest.(check (list string))
    "falls back to local and completes" (Lazy.force expected)
    (List.map render remote);
  Alcotest.(check bool) "fallback was announced" true
    (saw events (function Event.Dispatch_fallback _ -> true | _ -> false))

(* --- 6. protocol robustness: malformed frames are rejected cleanly and
   the daemon keeps serving --- *)
let le64 n = String.init 8 (fun i -> Char.chr ((n lsr (8 * i)) land 0xff))

let write_all fd s =
  ignore (Unix.write_substring fd s 0 (String.length s))

let connect (a : Darco_dispatch.addr) =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.connect fd (ADDR_INET (Worker.resolve a.host, a.port));
  Wire.send fd (Wire.Hello { version = Wire.protocol_version; slots = 0 });
  (match Wire.recv ~deadline:(Unix.gettimeofday () +. 10.0) fd with
  | Wire.Hello { version; slots } ->
    Alcotest.(check int) "hello echoed" Wire.protocol_version version;
    Alcotest.(check bool) "worker advertises at least one slot" true (slots >= 1)
  | _ -> Alcotest.fail "expected the hello echo");
  fd

let test_malformed_frame_rejected () =
  let pid, addr = spawn_worker () in
  Fun.protect
    ~finally:(fun () -> reap pid)
    (fun () ->
      let deadline () = Unix.gettimeofday () +. 10.0 in
      (* a WORK frame whose payload does not match its CRC *)
      let fd = connect addr in
      write_all fd ("WORK" ^ le64 4 ^ le64 0 ^ "junk");
      (match Wire.recv ~deadline:(deadline ()) fd with
      | Wire.Fail { id; reason } ->
        Alcotest.(check int) "connection-level failure" (-1) id;
        Alcotest.(check bool) "reason is non-empty" true (String.length reason > 0)
      | _ -> Alcotest.fail "expected a Fail reply to a corrupt frame");
      (* the stream is no longer trusted: the daemon drops this connection *)
      (match Wire.recv ~deadline:(deadline ()) fd with
      | exception Wire.Closed -> ()
      | _ -> Alcotest.fail "expected the corrupted connection to be dropped");
      Unix.close fd;
      (* a well-framed message that is not a valid work unit fails only the
         request: the same connection keeps working *)
      let fd = connect addr in
      Wire.send fd (Wire.Work { id = 7; unit_ = "this is not a DWRK unit" });
      (match Wire.recv ~deadline:(deadline ()) fd with
      | Wire.Fail { id; _ } -> Alcotest.(check int) "failure names the unit" 7 id
      | _ -> Alcotest.fail "expected a Fail reply to a bogus unit");
      Wire.send fd Wire.Ping;
      (match Wire.recv ~deadline:(deadline ()) fd with
      | Wire.Pong -> ()
      | _ -> Alcotest.fail "expected Pong after the contained failure");
      (* and the daemon still executes real work afterwards *)
      (match Lazy.force works with
      | w :: _ ->
        Wire.send fd (Wire.Work { id = 9; unit_ = Work.to_string w });
        (match Wire.recv ~deadline:(deadline ()) fd with
        | Wire.Result { id; text; spans = _ } ->
          Alcotest.(check int) "result names the unit" 9 id;
          Alcotest.(check bool) "result parses as JSON" true
            (match J.parse text with _ -> true | exception _ -> false)
        | _ -> Alcotest.fail "expected a Result for a genuine unit")
      | [] -> Alcotest.fail "no work units");
      Unix.close fd)

(* --- 7. a CKPT frame whose bytes do not hash to the claimed digest is
   rejected at the wire and kills only that connection --- *)
let test_mismatched_ckpt_rejected () =
  let pid, addr = spawn_worker () in
  Fun.protect
    ~finally:(fun () -> reap pid)
    (fun () ->
      let deadline () = Unix.gettimeofday () +. 10.0 in
      let fd = connect addr in
      (* [Wire.send] does not validate outgoing frames, so a lying push is
         expressible — and must be refused by the receiver *)
      Wire.send fd
        (Wire.Ckpt { digest = String.make 32 'a'; bytes = "not that content" });
      (match Wire.recv ~deadline:(deadline ()) fd with
      | Wire.Fail { id; reason } ->
        Alcotest.(check int) "connection-level failure" (-1) id;
        Alcotest.(check bool) "reason mentions the digest check" true
          (String.length reason > 0)
      | _ -> Alcotest.fail "expected a Fail reply to a lying CKPT frame");
      (match Wire.recv ~deadline:(deadline ()) fd with
      | exception Wire.Closed -> ()
      | _ -> Alcotest.fail "expected the connection to be dropped");
      Unix.close fd;
      (* the daemon survives and serves fresh connections *)
      let fd = connect addr in
      Wire.send fd Wire.Ping;
      (match Wire.recv ~deadline:(deadline ()) fd with
      | Wire.Pong -> ()
      | _ -> Alcotest.fail "expected Pong on a fresh connection");
      Unix.close fd)

(* --- 8. the codec survives non-blocking sockets: frames dribbling in one
   byte at a time, and a frame larger than the socket buffer going out ---
   both paths park in select on EAGAIN instead of tearing the frame *)
let test_partial_io () =
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  Unix.set_nonblock a;
  (* shrink the buffers so a large frame cannot possibly fit in one write *)
  (try Unix.setsockopt_int a Unix.SO_SNDBUF 4096 with Unix.Unix_error _ -> ());
  let big = 1 lsl 20 in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    Unix.close a;
    (try
       (* dribble a PING frame so the parent's reads come up short *)
       let frame = "PING" ^ le64 0 ^ le64 (B.crc32 "") in
       String.iteri
         (fun i c ->
           if i mod 3 = 0 then Unix.sleepf 0.01;
           ignore (Unix.write_substring b (String.make 1 c) 0 1))
         frame;
       (* then drain the parent's oversized CKPT and acknowledge it *)
       match Wire.recv ~deadline:(Unix.gettimeofday () +. 30.0) b with
       | Wire.Ckpt { bytes; _ } when String.length bytes = big ->
         Wire.send b Wire.Pong
       | _ -> ()
     with _ -> ());
    Unix._exit 0
  | pid ->
    Unix.close b;
    Fun.protect
      ~finally:(fun () -> reap pid)
      (fun () ->
        (match Wire.recv ~deadline:(Unix.gettimeofday () +. 30.0) a with
        | Wire.Ping -> ()
        | _ -> Alcotest.fail "expected the dribbled Ping to reassemble");
        let bytes = String.init big (fun i -> Char.chr (i land 0xff)) in
        Wire.send a (Wire.Ckpt { digest = Store.digest bytes; bytes });
        match Wire.recv ~deadline:(Unix.gettimeofday () +. 30.0) a with
        | Wire.Pong -> ()
        | _ -> Alcotest.fail "expected the peer to acknowledge the big frame")

(* --- 9. wire v4 golden fixtures: the campaign frames committed as pinned
   bytes.  The encoder must still emit exactly these bytes and the decoder
   must still accept them — the compatibility contract with every client
   built against today's protocol --- *)
let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Decode raw bytes exactly as a peer would: through a socket. *)
let recv_bytes bytes =
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  ignore (Unix.write_substring b bytes 0 (String.length bytes));
  Unix.close b;
  Fun.protect
    ~finally:(fun () -> Unix.close a)
    (fun () -> Wire.recv ~deadline:(Unix.gettimeofday () +. 10.0) a)

let v4_golden =
  [
    ( "wire_stat_v4.bin",
      Wire.Status
        {
          id = 7;
          state = "running";
          done_ = 1;
          total = 4;
          hits = 1;
          dispatched = 3;
          uptime_s = 0;
          version = "";
        } );
    ( "wire_artf_v4.bin",
      Wire.Artifact
        { id = 7; key = "429.mcf@130000/0011aabb"; json = "{\"ipc\":1.5}" } );
    ("wire_done_v4.bin", Wire.Done { id = 7; json = "{\"benchmark\":\"429.mcf\"}" });
  ]

let test_v4_golden_fixtures () =
  List.iter
    (fun (name, msg) ->
      let golden = read_file (Filename.concat "fixtures" name) in
      Alcotest.(check string)
        (name ^ ": encoder still emits the committed bytes")
        golden (Wire.encode msg);
      Alcotest.(check bool)
        (name ^ ": committed bytes still decode to the same message")
        true
        (recv_bytes golden = msg))
    v4_golden

let test_v4_malformed_rejected () =
  let golden = read_file (Filename.concat "fixtures" "wire_stat_v4.bin") in
  let corrupt bytes =
    match recv_bytes bytes with
    | _ -> Alcotest.fail "decoded a malformed v4 frame"
    | exception B.Corrupt _ -> ()
  in
  (* one flipped bit in the CRC field *)
  let b = Bytes.of_string golden in
  Bytes.set b 12 (Char.chr (Char.code (Bytes.get b 12) lxor 0x01));
  corrupt (Bytes.to_string b);
  (* one flipped bit in the payload *)
  let b = Bytes.of_string golden in
  let last = Bytes.length b - 1 in
  Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0x80));
  corrupt (Bytes.to_string b);
  (* trailing garbage inside a correctly-checksummed payload: the frame
     passes the CRC but the message decoder must refuse the leftovers *)
  let payload = String.sub golden 20 (String.length golden - 20) ^ "!" in
  corrupt
    (String.sub golden 0 4
    ^ le64 (String.length payload)
    ^ le64 (B.crc32 payload)
    ^ payload);
  (* a frame cut off mid-payload is a clean Closed, not a wrong message *)
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  ignore (Unix.write_substring b golden 0 10);
  Unix.close b;
  Fun.protect
    ~finally:(fun () -> Unix.close a)
    (fun () ->
      match Wire.recv ~deadline:(Unix.gettimeofday () +. 10.0) a with
      | _ -> Alcotest.fail "decoded a truncated v4 frame"
      | exception Wire.Closed -> ())

(* --- 9b. wire v5 frames: METR/HLTH and the Status tail round-trip
   through a real socket.  A default-tail Status must keep encoding the
   exact v4 bytes (the golden fixture above pins that), so the tail has
   to be genuinely on the wire when it is set --- *)
let test_v5_roundtrip () =
  Alcotest.(check int) "protocol is v5" 5 Wire.protocol_version;
  let tailed =
    Wire.Status
      {
        id = 3;
        state = "serving";
        done_ = 2;
        total = 9;
        hits = 1;
        dispatched = 1;
        uptime_s = 77;
        version = "0.10.0";
      }
  in
  List.iter
    (fun msg ->
      Alcotest.(check bool) "v5 frame round-trips through a socket" true
        (recv_bytes (Wire.encode msg) = msg))
    [
      Wire.Metrics { json = "" };
      Wire.Metrics { json = {|{"counters":{"events_total":5}}|} };
      Wire.Health { json = {|{"state":"serving","uptime_s":12}|} };
      tailed;
    ];
  let plain =
    Wire.Status
      {
        id = 3;
        state = "serving";
        done_ = 2;
        total = 9;
        hits = 1;
        dispatched = 1;
        uptime_s = 0;
        version = "";
      }
  in
  Alcotest.(check bool) "the Status tail really rides the frame" true
    (String.length (Wire.encode tailed) > String.length (Wire.encode plain))

(* --- 10. version negotiation: a v3 client against today's server keeps
   working at v3; a v2 client is refused with a reason --- *)
let test_version_negotiation () =
  let pid, addr = spawn_worker () in
  Fun.protect
    ~finally:(fun () -> reap pid)
    (fun () ->
      let deadline () = Unix.gettimeofday () +. 10.0 in
      let dial () =
        let fd = Unix.socket PF_INET SOCK_STREAM 0 in
        Unix.connect fd (ADDR_INET (Worker.resolve addr.host, addr.port));
        fd
      in
      (* a v3 peer: the server answers at the common version and serves *)
      let fd = dial () in
      Wire.send fd (Wire.Hello { version = 3; slots = 0 });
      (match Wire.recv ~deadline:(deadline ()) fd with
      | Wire.Hello { version; _ } ->
        Alcotest.(check int) "server downgrades to the peer's version" 3 version
      | _ -> Alcotest.fail "expected a Hello reply to a v3 peer");
      Wire.send fd Wire.Ping;
      (match Wire.recv ~deadline:(deadline ()) fd with
      | Wire.Pong -> ()
      | _ -> Alcotest.fail "expected the v3 connection to keep serving");
      Unix.close fd;
      (* a v2 peer: below the floor, refused outright *)
      let fd = dial () in
      Wire.send fd (Wire.Hello { version = 2; slots = 0 });
      (match Wire.recv ~deadline:(deadline ()) fd with
      | Wire.Fail { id; reason } ->
        Alcotest.(check int) "connection-level refusal" (-1) id;
        Alcotest.(check bool) "refusal carries a reason" true
          (String.length reason > 0)
      | _ -> Alcotest.fail "expected a v2 peer to be refused");
      Unix.close fd)

(* --- 11. keepalive: a worker that stops responding mid-sweep (SIGSTOP —
   the socket stays open, so only missed pongs can expose it) is declared
   dead after K missed probes and its units are reassigned --- *)
let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_keepalive_detects_stopped_worker () =
  let stopper w =
    Unix.kill (Unix.getpid ()) Sys.sigstop;
    Work.exec w
  in
  let pstuck, astuck = spawn_worker ~exec:stopper () in
  let pgood, agood = spawn_worker () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pstuck Sys.sigcont with Unix.Unix_error _ -> ());
      reap pstuck;
      reap pgood)
    (fun () ->
      let bus, events = collecting_bus () in
      let t0 = Unix.gettimeofday () in
      (* the dispatch timeout is far away: only the keepalive can notice *)
      let remote =
        Sweep.run
          (Darco_dispatch.remote ~bus ~keepalive_idle:0.5 ~keepalive_misses:2
             ~timeout:120.0 ~retries:3 [ astuck; agood ])
          (Lazy.force works)
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check (list string))
        "sweep completes with identical results past the stopped worker"
        (Lazy.force expected) (List.map render remote);
      Alcotest.(check bool) "keepalive noticed long before the unit timeout"
        true (elapsed < 60.0);
      Alcotest.(check bool) "the loss names the missed pongs" true
        (List.exists
           (function
             | Event.Worker_lost { reason; _ } -> contains reason "keepalive"
             | _ -> false)
           !events))

(* --- spec parsing (the CLI's --backend flag) --- *)
let test_spec_parsing () =
  let ok = function Ok s -> s | Error e -> Alcotest.failf "parse failed: %s" e in
  (match ok (Darco_dispatch.spec_of_string "serial") with
  | Darco_dispatch.Serial -> ()
  | _ -> Alcotest.fail "expected Serial");
  (match ok (Darco_dispatch.spec_of_string ~jobs:3 "local") with
  | Darco_dispatch.Local { jobs } -> Alcotest.(check int) "default jobs" 3 jobs
  | _ -> Alcotest.fail "expected Local");
  (match ok (Darco_dispatch.spec_of_string "local:9") with
  | Darco_dispatch.Local { jobs } -> Alcotest.(check int) "explicit jobs" 9 jobs
  | _ -> Alcotest.fail "expected Local");
  (match ok (Darco_dispatch.spec_of_string ~jobs:3 "domains") with
  | Darco_dispatch.Domains { jobs } ->
    Alcotest.(check int) "default domain jobs" 3 jobs
  | _ -> Alcotest.fail "expected Domains");
  (match ok (Darco_dispatch.spec_of_string "domains:6") with
  | Darco_dispatch.Domains { jobs } ->
    Alcotest.(check int) "explicit domain jobs" 6 jobs
  | _ -> Alcotest.fail "expected Domains");
  (match ok (Darco_dispatch.spec_of_string ~timeout:5.0 ~retries:1 "remote:a:1,b:2") with
  | Darco_dispatch.Remote { workers; timeout; retries } ->
    Alcotest.(check (list string)) "workers"
      [ "a:1"; "b:2" ]
      (List.map Darco_dispatch.addr_to_string workers);
    Alcotest.(check (float 0.0)) "timeout" 5.0 timeout;
    Alcotest.(check int) "retries" 1 retries
  | _ -> Alcotest.fail "expected Remote");
  let bad s =
    match Darco_dispatch.spec_of_string s with
    | Ok _ -> Alcotest.failf "accepted bad spec %S" s
    | Error _ -> ()
  in
  List.iter bad
    [
      "";
      "serial:2";
      "local:zero";
      "domains:zero";
      "domains:0";
      "remote:";
      "remote:host";
      "remote:host:0";
      "ftp:x";
    ]

let () =
  Alcotest.run "dispatch"
    [
      ( "protocol",
        [
          Alcotest.test_case "spec parsing" `Quick test_spec_parsing;
          Alcotest.test_case "malformed frames rejected" `Quick
            test_malformed_frame_rejected;
          Alcotest.test_case "mismatched CKPT rejected" `Quick
            test_mismatched_ckpt_rejected;
          Alcotest.test_case "partial reads and writes reassemble" `Quick
            test_partial_io;
          Alcotest.test_case "v4 golden fixtures" `Quick
            test_v4_golden_fixtures;
          Alcotest.test_case "malformed v4 frames rejected" `Quick
            test_v4_malformed_rejected;
          Alcotest.test_case "v5 frames roundtrip" `Quick test_v5_roundtrip;
          Alcotest.test_case "version negotiation" `Quick
            test_version_negotiation;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "loopback end-to-end" `Quick test_loopback_e2e;
          Alcotest.test_case "loopback via --isolate workers" `Quick
            test_loopback_isolate;
          Alcotest.test_case "sweep observability: stamps, spans, chrome"
            `Quick test_sweep_observability;
          Alcotest.test_case "checkpoint shipped at most once" `Quick
            test_ckpt_shipped_once;
          Alcotest.test_case "slow worker is stolen from" `Quick
            test_steal_from_slow_worker;
          Alcotest.test_case "worker dies mid-unit" `Quick
            test_worker_died_mid_unit;
          Alcotest.test_case "keepalive exposes a stopped worker" `Quick
            test_keepalive_detects_stopped_worker;
          Alcotest.test_case "unreachable worker falls back" `Quick
            test_unreachable_falls_back;
        ] );
    ]
