(* Design-space exploration with the timing and power simulators: the
   paper's "wide in-order" question.  Sweeps core width and data-cache size
   for one SPECFP-like and one SPECINT-like workload and reports IPC, power
   and performance/watt for each configuration.

     dune exec examples/design_space.exe *)

module T = Darco_timing
module P = Darco_power

let configs =
  [
    ("1-wide", T.Tconfig.narrow);
    ("2-wide", T.Tconfig.default);
    ("4-wide", T.Tconfig.wide);
    ( "2-wide big-DL1",
      { T.Tconfig.default with dl1 = { sets = 256; ways = 8; line = 64; latency = 3 } } );
    ( "4-wide small-DL1",
      { T.Tconfig.wide with dl1 = { sets = 32; ways = 2; line = 64; latency = 1 } } );
  ]

let run_one name tcfg program =
  let ctl = Darco.Controller.create ~seed:7 program in
  let pipe = T.Pipeline.create tcfg in
  T.Pipeline.attach pipe (Darco.Controller.bus ctl);
  ignore (Darco.Controller.run ~max_insns:220_000 ctl);
  let s = T.Pipeline.summary pipe in
  let ev = T.Pipeline.events pipe in
  let rep = P.Model.evaluate ev in
  [
    name;
    Printf.sprintf "%.3f" s.ipc;
    Printf.sprintf "%.1f%%" (100. *. s.branch_accuracy);
    Printf.sprintf "%.2f%%" (100. *. s.dl1_miss_rate);
    Printf.sprintf "%.3f" rep.avg_watts;
    Printf.sprintf "%.2f" (rep.epi_nj);
    Printf.sprintf "%.0f" (P.Model.perf_per_watt ev rep);
  ]

let () =
  List.iter
    (fun bench ->
      let e = Darco_workloads.Registry.find bench in
      Printf.printf "=== %s ===\n" e.name;
      let header = [ "config"; "IPC"; "bp-acc"; "DL1-miss"; "watts"; "nJ/insn"; "MIPS/W" ] in
      let rows = List.map (fun (n, c) -> run_one n c (e.build ())) configs in
      print_endline (Darco_util.Table.render ~header rows);
      print_newline ())
    [ "435.gromacs"; "458.sjeng" ]
